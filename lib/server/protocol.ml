module Json = Obs.Json

(* --- framing ---

   Every message is a 4-byte big-endian payload length followed by that
   many bytes of JSON. Length-first framing keeps the reader total: it
   either gets a whole document or reports exactly what went wrong,
   and a runaway peer is cut off at [max_frame] instead of exhausting
   memory. *)

let max_frame = 256 * 1024 * 1024

let really_write fd s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
    end
  in
  go 0

(* [None] on EOF at a message boundary; [Error] on a torn read. *)
let really_read fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Ok (Some (Bytes.unsafe_to_string buf))
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> if off = 0 then Ok None else Error "unexpected EOF mid-frame"
      | r -> go (off + r)
  in
  go 0

let send fd j =
  let payload = Json.to_string ~minify:true j in
  let n = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  really_write fd (Bytes.unsafe_to_string hdr);
  really_write fd payload

type received = Frame of Json.t | Eof | Bad of string

let recv fd =
  match really_read fd 4 with
  | Error m -> Bad m
  | Ok None -> Eof
  | Ok (Some hdr) -> (
      let b i = Char.code hdr.[i] in
      let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if n < 0 || n > max_frame then
        Bad (Printf.sprintf "frame length %d out of bounds" n)
      else
        match really_read fd n with
        | Error m -> Bad m
        | Ok None -> Bad "unexpected EOF mid-frame"
        | Ok (Some payload) -> (
            match Json.parse payload with
            | Ok j -> Frame j
            | Error m -> Bad ("bad JSON payload: " ^ m)))

(* --- binary payloads in JSON strings ---

   The JSON layer re-encodes \uXXXX escapes as UTF-8, so raw bytes
   would not survive a round-trip; hex is boring and total. *)

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    let digit c =
      match c with
      | '0' .. '9' -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Ok (Char.code c - Char.code 'A' + 10)
      | _ -> Error (Printf.sprintf "bad hex digit %C" c)
    in
    let b = Bytes.create (n / 2) in
    let rec go i =
      if i = n / 2 then Ok (Bytes.unsafe_to_string b)
      else
        match (digit s.[2 * i], digit s.[(2 * i) + 1]) with
        | Ok hi, Ok lo ->
            Bytes.set b i (Char.chr ((hi lsl 4) lor lo));
            go (i + 1)
        | Error m, _ | _, Error m -> Error m
    in
    go 0

(* --- requests --- *)

type source = { src_name : string; src_text : string }

type request =
  | Ping of { delay_ms : int }
      (** [delay_ms] makes the handler sleep — a deterministic way to
          exercise deadlines. *)
  | Compile of { files : string list; sources : source list }
  | Link of {
      files : string list;
      sources : source list;
      level : string;
      entry : string option;
    }
  | Stats
  | Metrics
  | Suite of { bench : string option; jobs : int option }
  | Shutdown

type envelope = {
  req : request;
  deadline_ms : int option;  (** overrides the daemon's default deadline *)
  trace : bool;              (** collect pass spans; replies carry a summary *)
}

let request ?deadline_ms ?(trace = false) req = { req; deadline_ms; trace }

let kind_of_request = function
  | Ping _ -> "ping"
  | Compile _ -> "compile"
  | Link _ -> "link"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Suite _ -> "suite"
  | Shutdown -> "shutdown"

let sources_field = function
  | [] -> []
  | sources ->
      [ ( "sources",
          Json.List
            (List.map
               (fun s ->
                 Json.Obj
                   [ ("name", Json.String s.src_name);
                     ("text", Json.String s.src_text) ])
               sources) ) ]

let files_field = function
  | [] -> []
  | files -> [ ("files", Json.List (List.map (fun f -> Json.String f) files)) ]

let request_to_json (e : envelope) =
  let base =
    match e.req with
    | Ping { delay_ms } ->
        if delay_ms = 0 then [] else [ ("delay_ms", Json.Int delay_ms) ]
    | Compile { files; sources } -> files_field files @ sources_field sources
    | Link { files; sources; level; entry } ->
        files_field files @ sources_field sources
        @ [ ("level", Json.String level) ]
        @ (match entry with
          | None -> []
          | Some e -> [ ("entry", Json.String e) ])
    | Stats | Metrics | Shutdown -> []
    | Suite { bench; jobs } ->
        (match bench with
        | None -> []
        | Some b -> [ ("bench", Json.String b) ])
        @ (match jobs with None -> [] | Some j -> [ ("jobs", Json.Int j) ])
  in
  Json.Obj
    (("kind", Json.String (kind_of_request e.req))
     :: base
    @ (match e.deadline_ms with
      | None -> []
      | Some d -> [ ("deadline_ms", Json.Int d) ])
    @ if e.trace then [ ("trace", Json.Bool true) ] else [])

let opt_member name conv j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let string_list_field name j =
  match Json.member name j with
  | Some (Json.List l) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.String s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "field %S must hold strings" name)
      in
      go [] l
  | Some _ -> Error (Printf.sprintf "field %S must be a list" name)
  | None -> Ok []

let sources_of_json j =
  match Json.member "sources" j with
  | None -> Ok []
  | Some (Json.List l) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match
              ( Option.bind (Json.member "name" item) Json.get_string,
                Option.bind (Json.member "text" item) Json.get_string )
            with
            | Some src_name, Some src_text ->
                go ({ src_name; src_text } :: acc) rest
            | _ -> Error "each source needs string fields \"name\" and \"text\"")
      in
      go [] l
  | Some _ -> Error "field \"sources\" must be a list"

let request_of_json j =
  let ( let* ) = Result.bind in
  let* kind =
    match Json.member "kind" j with
    | Some (Json.String k) -> Ok k
    | _ -> Error "missing request kind"
  in
  let* req =
    match kind with
    | "ping" ->
        let* delay = opt_member "delay_ms" Json.get_int j in
        Ok (Ping { delay_ms = Option.value delay ~default:0 })
    | "compile" ->
        let* files = string_list_field "files" j in
        let* sources = sources_of_json j in
        if files = [] && sources = [] then
          Error "compile needs \"files\" or \"sources\""
        else Ok (Compile { files; sources })
    | "link" ->
        let* files = string_list_field "files" j in
        let* sources = sources_of_json j in
        let* level = opt_member "level" Json.get_string j in
        let* entry = opt_member "entry" Json.get_string j in
        if files = [] && sources = [] then
          Error "link needs \"files\" or \"sources\""
        else
          Ok
            (Link
               { files;
                 sources;
                 level = Option.value level ~default:"full";
                 entry })
    | "stats" -> Ok Stats
    | "metrics" -> Ok Metrics
    | "suite" ->
        let* bench = opt_member "bench" Json.get_string j in
        let* jobs = opt_member "jobs" Json.get_int j in
        Ok (Suite { bench; jobs })
    | "shutdown" -> Ok Shutdown
    | k -> Error (Printf.sprintf "unknown request kind %S" k)
  in
  let* deadline_ms = opt_member "deadline_ms" Json.get_int j in
  let* trace = opt_member "trace" Json.get_bool j in
  Ok { req; deadline_ms; trace = Option.value trace ~default:false }

(* --- responses --- *)

type err = { code : string; message : string; retry_after_ms : int option }

let err ?retry_after_ms code message = { code; message; retry_after_ms }

let ok_response fields = Json.Obj (("ok", Json.Bool true) :: fields)

let error_response ?retry_after_ms ~code message =
  Json.Obj
    [ ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          ([ ("code", Json.String code); ("message", Json.String message) ]
          @
          match retry_after_ms with
          | None -> []
          | Some ms -> [ ("retry_after_ms", Json.Int ms) ]) ) ]

let response_result j =
  match Json.member "ok" j with
  | Some (Json.Bool true) -> (
      match j with
      | Json.Obj fields ->
          Ok (List.filter (fun (k, _) -> k <> "ok") fields)
      | _ -> Ok [])
  | Some (Json.Bool false) -> (
      let e name conv =
        Option.bind (Json.member "error" j) (fun e ->
            Option.bind (Json.member name e) conv)
      in
      match (e "code" Json.get_string, e "message" Json.get_string) with
      | Some code, Some message ->
          Error
            { code; message; retry_after_ms = e "retry_after_ms" Json.get_int }
      | _ -> Error (err "protocol" "malformed error reply"))
  | _ -> Error (err "protocol" "reply carries no ok field")
