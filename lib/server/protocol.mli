(** The omlinkd wire protocol.

    Length-framed JSON: every message is a 4-byte big-endian payload
    length followed by that many bytes of (minified) JSON. Requests are
    an envelope — a kind plus optional [deadline_ms] and [trace] — and
    replies are objects with an [ok] marker: [{"ok":true, ...fields}] or
    [{"ok":false,"error":{"code":...,"message":...}}]. Binary payloads
    (object files, images) travel hex-encoded inside JSON strings. *)

val max_frame : int
(** Frames longer than this are rejected without being read. *)

val send : Unix.file_descr -> Obs.Json.t -> unit
(** May raise [Unix.Unix_error] on a broken connection. *)

type received =
  | Frame of Obs.Json.t
  | Eof  (** clean EOF at a message boundary *)
  | Bad of string  (** torn frame, oversized length, or invalid JSON *)

val recv : Unix.file_descr -> received

val hex_encode : string -> string
val hex_decode : string -> (string, string) result

type source = { src_name : string; src_text : string }
(** An inline compilation input: name + minic source text travelling in
    the request itself, so the daemon's request→image path never touches
    the filesystem. *)

type request =
  | Ping of { delay_ms : int }
      (** [delay_ms] makes the handler sleep before replying — a
          deterministic way to exercise deadlines. *)
  | Compile of { files : string list; sources : source list }
  | Link of {
      files : string list;
      sources : source list;
      level : string;
      entry : string option;
    }  (** [files] are daemon-side paths; [sources] are inline. *)
  | Stats
  | Metrics
      (** live registry snapshot: the reply carries [metrics] (JSON) and
          [prometheus] (text exposition) fields *)
  | Suite of { bench : string option; jobs : int option }
  | Shutdown

type envelope = {
  req : request;
  deadline_ms : int option;  (** overrides the daemon's default deadline *)
  trace : bool;  (** collect pass spans; the reply carries them *)
}

val request : ?deadline_ms:int -> ?trace:bool -> request -> envelope
val kind_of_request : request -> string

val request_to_json : envelope -> Obs.Json.t
val request_of_json : Obs.Json.t -> (envelope, string) result

type err = { code : string; message : string; retry_after_ms : int option }
(** [retry_after_ms] rides on [overloaded] errors: the server's estimate
    of when retrying is worthwhile. *)

val err : ?retry_after_ms:int -> string -> string -> err

val ok_response : (string * Obs.Json.t) list -> Obs.Json.t
val error_response : ?retry_after_ms:int -> code:string -> string -> Obs.Json.t

val response_result :
  Obs.Json.t -> ((string * Obs.Json.t) list, err) result
(** Split a reply on its [ok] marker; [Ok] carries the fields minus the
    marker. *)
