(* Worker-pool scheduler with request coalescing and backpressure.

   All scheduler state lives under one mutex. Tickets (one per distinct
   computation) carry their own Condition variable on that shared mutex
   so completion wakes exactly the waiters attached to that ticket.

   OCaml's stdlib Condition has no timed wait, so waiters with a
   deadline poll: short sleeps near the deadline, longer ones far from
   it. Waiters without a deadline block on the condition directly. *)

type finished =
  | F_reply of Obs.Json.t
  | F_crashed of string
  | F_aborted of string

type ticket = {
  key : string option;
  mutable job : (unit -> Obs.Json.t) option;  (* dropped once taken *)
  mutable state : finished option;
  cond : Condition.t;  (* signalled (broadcast) when [state] is set *)
  mutable waiters : int;  (* submissions still interested in the result *)
}

type t = {
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when the queue grows or we stop *)
  queue : ticket Queue.t;
  queue_limit : int;
  inflight : (string, ticket) Hashtbl.t;  (* key -> queued-or-running ticket *)
  mutable accepting : bool;
  mutable stopping : bool;
  mutable busy : int;  (* workers currently running a job *)
  mutable domains : unit Domain.t list;
  mutable joined : bool;
  n_workers : int;
  (* decaying average of service time, seeds retry_after_ms *)
  mutable avg_service_s : float;
  (* lifetime counts, mirrored into the registry *)
  mutable n_submitted : int;
  mutable n_completed : int;
  mutable n_coalesced : int;
  mutable n_shed : int;
  mutable n_abandoned : int;
  m_depth : Obs.Metrics.gauge;
  m_busy : Obs.Metrics.gauge;
  m_submitted : Obs.Metrics.counter;
  m_completed : Obs.Metrics.counter;
  m_coalesced : Obs.Metrics.counter;
  m_shed : Obs.Metrics.counter;
  m_abandoned : Obs.Metrics.counter;
}

type handle = { ticket : ticket; coalesced : bool }

type submitted =
  | Accepted of handle
  | Shed of { queue_depth : int; retry_after_ms : int }
  | Closed

type outcome =
  | Reply of Obs.Json.t
  | Crashed of string
  | Timed_out
  | Aborted of string

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let set_depth t = Obs.Metrics.set_gauge t.m_depth (float (Queue.length t.queue))
let set_busy t = Obs.Metrics.set_gauge t.m_busy (float t.busy)

let finish t ticket outcome =
  ticket.state <- Some outcome;
  ticket.job <- None;
  (match ticket.key with
  | Some k -> (
      match Hashtbl.find_opt t.inflight k with
      | Some tk when tk == ticket -> Hashtbl.remove t.inflight k
      | _ -> ())
  | None -> ());
  Condition.broadcast ticket.cond

(* Pop the next ticket someone still cares about; entries whose waiters
   all timed out are dropped unrun. Caller holds the mutex. *)
let rec next_wanted t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some ticket ->
      if ticket.waiters > 0 then Some ticket
      else begin
        t.n_abandoned <- t.n_abandoned + 1;
        Obs.Metrics.incr t.m_abandoned;
        finish t ticket (F_aborted "abandoned: all waiters gave up");
        next_wanted t
      end

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    let job =
      let rec wait_for_work () =
        if t.stopping then None
        else
          match next_wanted t with
          | Some ticket ->
              t.busy <- t.busy + 1;
              set_depth t;
              set_busy t;
              let job = Option.get ticket.job in
              ticket.job <- None;
              Some (ticket, job)
          | None ->
              Condition.wait t.work t.mutex;
              wait_for_work ()
      in
      wait_for_work ()
    in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some (ticket, job) ->
        let t0 = Unix.gettimeofday () in
        let outcome =
          match job () with
          | reply -> F_reply reply
          | exception e -> F_crashed (Printexc.to_string e)
        in
        let dt = Unix.gettimeofday () -. t0 in
        locked t (fun () ->
            t.avg_service_s <-
              (if t.n_completed = 0 then dt
               else (0.8 *. t.avg_service_s) +. (0.2 *. dt));
            t.n_completed <- t.n_completed + 1;
            Obs.Metrics.incr t.m_completed;
            t.busy <- t.busy - 1;
            set_busy t;
            finish t ticket outcome);
        loop ()
  in
  loop ()

let create ?workers ?(queue_limit = 64) ?(registry = Obs.Metrics.default) () =
  let n_workers =
    match workers with
    | Some n -> max 1 n
    | None -> max 2 (Reports.Pool.default_jobs ())
  in
  let g name = Obs.Metrics.gauge ~registry name in
  let c name = Obs.Metrics.counter ~registry name in
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      queue_limit = max 1 queue_limit;
      inflight = Hashtbl.create 64;
      accepting = true;
      stopping = false;
      busy = 0;
      domains = [];
      joined = false;
      n_workers;
      avg_service_s = 0.;
      n_submitted = 0;
      n_completed = 0;
      n_coalesced = 0;
      n_shed = 0;
      n_abandoned = 0;
      m_depth = g "omlt_srv_queue_depth";
      m_busy = g "omlt_srv_busy_workers";
      m_submitted = c "omlt_srv_submitted_total";
      m_completed = c "omlt_srv_completed_total";
      m_coalesced = c "omlt_srv_coalesced_total";
      m_shed = c "omlt_srv_shed_total";
      m_abandoned = c "omlt_srv_abandoned_total";
    }
  in
  t.domains <-
    List.init n_workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let workers t = t.n_workers
let queue_limit t = t.queue_limit

(* How long a shed client should back off: the backlog's expected
   drain time through the pool, clamped to a sane band. *)
let retry_after_ms t =
  let per = if t.avg_service_s > 0. then t.avg_service_s else 0.02 in
  let backlog = Queue.length t.queue + t.busy + 1 in
  let s = per *. float backlog /. float t.n_workers in
  max 10 (min 5000 (int_of_float (s *. 1000.)))

let submit t ?key job =
  locked t (fun () ->
      if (not t.accepting) || t.stopping then Closed
      else begin
        t.n_submitted <- t.n_submitted + 1;
        Obs.Metrics.incr t.m_submitted;
        let coalesce =
          match key with
          | None -> None
          | Some k -> Hashtbl.find_opt t.inflight k
        in
        match coalesce with
        | Some ticket ->
            ticket.waiters <- ticket.waiters + 1;
            t.n_coalesced <- t.n_coalesced + 1;
            Obs.Metrics.incr t.m_coalesced;
            Accepted { ticket; coalesced = true }
        | None ->
            if Queue.length t.queue >= t.queue_limit then begin
              t.n_shed <- t.n_shed + 1;
              Obs.Metrics.incr t.m_shed;
              Shed
                {
                  queue_depth = Queue.length t.queue;
                  retry_after_ms = retry_after_ms t;
                }
            end
            else begin
              let ticket =
                {
                  key;
                  job = Some job;
                  state = None;
                  cond = Condition.create ();
                  waiters = 1;
                }
              in
              (match key with
              | Some k -> Hashtbl.replace t.inflight k ticket
              | None -> ());
              Queue.add ticket t.queue;
              set_depth t;
              Condition.signal t.work;
              Accepted { ticket; coalesced = false }
            end
      end)

let was_coalesced h = h.coalesced

let outcome_of_finished = function
  | F_reply j -> Reply j
  | F_crashed m -> Crashed m
  | F_aborted m -> Aborted m

let wait t ?deadline handle =
  let ticket = handle.ticket in
  Mutex.lock t.mutex;
  let finally () = Mutex.unlock t.mutex in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        match ticket.state with
        | Some f -> outcome_of_finished f
        | None -> (
            match deadline with
            | None ->
                Condition.wait ticket.cond t.mutex;
                loop ()
            | Some dl ->
                let remaining = dl -. Unix.gettimeofday () in
                if remaining <= 0. then begin
                  ticket.waiters <- ticket.waiters - 1;
                  Timed_out
                end
                else begin
                  (* no timed Condition.wait in the stdlib: poll, coarse
                     when far from the deadline, fine when close *)
                  let nap =
                    if remaining > 0.2 then min 0.05 (remaining -. 0.15)
                    else 0.004
                  in
                  Mutex.unlock t.mutex;
                  Unix.sleepf nap;
                  Mutex.lock t.mutex;
                  loop ()
                end)
      in
      loop ())

type stats = {
  st_workers : int;
  st_queue_depth : int;
  st_busy : int;
  st_submitted : int;
  st_completed : int;
  st_coalesced : int;
  st_shed : int;
  st_abandoned : int;
}

let stats t =
  locked t (fun () ->
      {
        st_workers = t.n_workers;
        st_queue_depth = Queue.length t.queue;
        st_busy = t.busy;
        st_submitted = t.n_submitted;
        st_completed = t.n_completed;
        st_coalesced = t.n_coalesced;
        st_shed = t.n_shed;
        st_abandoned = t.n_abandoned;
      })

let seal t = locked t (fun () -> t.accepting <- false)

let drain t ~deadline =
  let idle () =
    locked t (fun () ->
        t.busy = 0
        && Queue.fold (fun acc tk -> acc && tk.waiters <= 0) true t.queue)
  in
  let rec loop () =
    if idle () then true
    else if Unix.gettimeofday () >= deadline then idle ()
    else begin
      Unix.sleepf 0.005;
      loop ()
    end
  in
  loop ()

let stop t =
  let join_bg =
    locked t (fun () ->
        if t.joined then false
        else begin
          t.joined <- true;
          t.accepting <- false;
          t.stopping <- true;
          (* abort everything still pending so waiters unblock *)
          Queue.iter
            (fun ticket -> finish t ticket (F_aborted "scheduler stopped"))
            t.queue;
          Queue.clear t.queue;
          Hashtbl.iter
            (fun _ ticket ->
              if ticket.state = None then
                finish t ticket (F_aborted "scheduler stopped"))
            (Hashtbl.copy t.inflight);
          set_depth t;
          Condition.broadcast t.work;
          t.busy > 0
        end)
  in
  let join () = List.iter Domain.join t.domains in
  if t.domains <> [] then
    if join_bg then
      (* a worker is stuck in a job nobody wants; don't block on it *)
      ignore (Thread.create join () : Thread.t)
    else join ()
