(** The request scheduler: the daemon's concurrency heart.

    A bounded request queue feeds a pool of worker {!Domain}s; the
    accept side stays free to multiplex many connections while the
    workers burn through link work in parallel. Three policies turn the
    pool into a service-grade scheduler:

    - {b Coalescing}: a submission may carry a content-digest key. If
      a request with the same key is already queued or running, the new
      submission attaches to the in-flight computation instead of
      enqueuing a duplicate — the store dedups {e artifacts}, the
      scheduler dedups {e work}. All attached waiters receive the
      identical reply value.
    - {b Backpressure}: when the queue is full the submission is shed
      immediately with a suggested [retry_after_ms] (derived from a
      decaying average of service times and the current backlog)
      instead of being accepted into an ever-growing backlog.
    - {b Deadlines}: waiting on a handle takes an absolute deadline and
      returns [Timed_out] the moment it passes, even while the request
      is still queued. A queued entry all of whose waiters gave up is
      discarded unrun.

    Every state change lands in the metrics registry:
    [omlt_srv_queue_depth], [omlt_srv_busy_workers] (gauges) and
    [omlt_srv_{submitted,completed,coalesced,shed,abandoned}_total]
    (counters). *)

type t

type handle
(** One submission's claim on a (possibly shared) computation. *)

type submitted =
  | Accepted of handle
  | Shed of { queue_depth : int; retry_after_ms : int }
      (** the queue is full; try again after [retry_after_ms] *)
  | Closed  (** the scheduler is draining or stopped *)

type outcome =
  | Reply of Obs.Json.t
  | Crashed of string  (** the job raised *)
  | Timed_out  (** the waiter's deadline passed; the job may still run *)
  | Aborted of string  (** the scheduler shut down before the job ran *)

val create :
  ?workers:int -> ?queue_limit:int -> ?registry:Obs.Metrics.t -> unit -> t
(** Spawn the worker pool. [workers] defaults to
    [max 2 (Reports.Pool.default_jobs ())] (so [OMLT_JOBS] is honoured);
    [queue_limit] defaults to 64. *)

val workers : t -> int
val queue_limit : t -> int

val submit : t -> ?key:string -> (unit -> Obs.Json.t) -> submitted
(** Enqueue a job. With [key], an identical in-flight request coalesces:
    the returned handle shares the original's computation and reply. *)

val was_coalesced : handle -> bool
(** Did this submission attach to an already-in-flight computation? *)

val wait : t -> ?deadline:float -> handle -> outcome
(** Block until the computation finishes or the absolute [deadline]
    (a [Unix.gettimeofday] timestamp) passes. May be called from any
    thread or domain; each waiter of a coalesced computation gets the
    same [Reply]. *)

type stats = {
  st_workers : int;
  st_queue_depth : int;
  st_busy : int;
  st_submitted : int;
  st_completed : int;
  st_coalesced : int;
  st_shed : int;
  st_abandoned : int;  (** queued entries dropped unrun: every waiter left *)
}

val stats : t -> stats

val seal : t -> unit
(** Stop accepting: every subsequent {!submit} returns [Closed]. *)

val drain : t -> deadline:float -> bool
(** Wait (until the absolute [deadline]) for all work anyone is still
    waiting on to finish. Returns [true] when the scheduler is fully
    idle — queued-but-abandoned entries do not count against draining. *)

val stop : t -> unit
(** Seal, abort everything still pending (waiters get [Aborted]) and
    shut the workers down. Idle workers are joined inline; workers stuck
    in an abandoned job are joined by a background thread so [stop]
    never blocks on a straggler. Idempotent. *)
