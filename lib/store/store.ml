type kind = Cunit | Lifted | Image

let kind_name = function
  | Cunit -> "cunit"
  | Lifted -> "lifted"
  | Image -> "image"

let all_kinds = [ Cunit; Lifted; Image ]

let digest_string s = Digest.to_hex (Digest.string s)
let digest_bytes b = Digest.to_hex (Digest.bytes b)

type counters = {
  mem_hits : int;
  mem_misses : int;
  disk_hits : int;
  disk_misses : int;
  evictions : int;
  corruptions : int;
  puts : int;
}

let counters_zero =
  { mem_hits = 0;
    mem_misses = 0;
    disk_hits = 0;
    disk_misses = 0;
    evictions = 0;
    corruptions = 0;
    puts = 0 }

let counters_diff a b =
  { mem_hits = a.mem_hits - b.mem_hits;
    mem_misses = a.mem_misses - b.mem_misses;
    disk_hits = a.disk_hits - b.disk_hits;
    disk_misses = a.disk_misses - b.disk_misses;
    evictions = a.evictions - b.evictions;
    corruptions = a.corruptions - b.corruptions;
    puts = a.puts - b.puts }

let counters_add a b =
  { mem_hits = a.mem_hits + b.mem_hits;
    mem_misses = a.mem_misses + b.mem_misses;
    disk_hits = a.disk_hits + b.disk_hits;
    disk_misses = a.disk_misses + b.disk_misses;
    evictions = a.evictions + b.evictions;
    corruptions = a.corruptions + b.corruptions;
    puts = a.puts + b.puts }

let counters_to_alist c =
  [ ("mem_hits", c.mem_hits);
    ("mem_misses", c.mem_misses);
    ("disk_hits", c.disk_hits);
    ("disk_misses", c.disk_misses);
    ("evictions", c.evictions);
    ("corruptions", c.corruptions);
    ("puts", c.puts) ]

type mut_counters = {
  mutable m_mem_hits : int;
  mutable m_mem_misses : int;
  mutable m_disk_hits : int;
  mutable m_disk_misses : int;
  mutable m_evictions : int;
  mutable m_corruptions : int;
  mutable m_puts : int;
}

let mut_zero () =
  { m_mem_hits = 0;
    m_mem_misses = 0;
    m_disk_hits = 0;
    m_disk_misses = 0;
    m_evictions = 0;
    m_corruptions = 0;
    m_puts = 0 }

let snapshot m =
  { mem_hits = m.m_mem_hits;
    mem_misses = m.m_mem_misses;
    disk_hits = m.m_disk_hits;
    disk_misses = m.m_disk_misses;
    evictions = m.m_evictions;
    corruptions = m.m_corruptions;
    puts = m.m_puts }

type entry = { value : string; mutable tick : int }

type t = {
  t_dir : string option;
  mem_capacity : int;
  lock : Mutex.t;
  table : (kind * string, entry) Hashtbl.t;
  mutable bytes : int;
  mutable clock : int;
  (* every attempted disk open, read or write — the "did we touch the
     filesystem at all?" probe behind the daemon's in-memory guarantee *)
  mutable m_disk_ops : int;
  cn : (kind * mut_counters) list;  (* one slot per kind *)
}

let default_dir () =
  match Sys.getenv_opt "OMLT_STORE" with
  | Some "" | Some "none" -> None
  | Some d -> Some d
  | None -> Some "_omstore"

let create ?dir ?(mem_capacity = 256 * 1024 * 1024) () =
  { t_dir = (match dir with Some d -> d | None -> default_dir ());
    mem_capacity;
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    bytes = 0;
    clock = 0;
    m_disk_ops = 0;
    cn = List.map (fun k -> (k, mut_zero ())) all_kinds }

let in_memory () = create ~dir:None ()

let dir t = t.t_dir

let cnt t kind = List.assoc kind t.cn

(* --- the on-disk layer ---

   One file per entry at <dir>/v1/<kind>/<key[0..1]>/<key>, holding the
   payload's own digest on the first line and the payload after it. The
   digest makes corruption detectable; the v1 path segment leaves room to
   change the format without misreading old caches. *)

let entry_path dir kind key =
  let prefix = if String.length key >= 2 then String.sub key 0 2 else "xx" in
  Filename.concat dir
    (Filename.concat "v1" (Filename.concat (kind_name kind) (Filename.concat prefix key)))

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

let disk_write t kind ~key value =
  match t.t_dir with
  | None -> ()
  | Some dir -> (
      t.m_disk_ops <- t.m_disk_ops + 1;
      try
        let path = entry_path dir kind key in
        mkdir_p (Filename.dirname path);
        let tmp =
          Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) t.clock
        in
        let oc = open_out_bin tmp in
        (try
           output_string oc (digest_string value);
           output_char oc '\n';
           output_string oc value;
           close_out oc
         with e -> close_out_noerr oc; raise e);
        (* atomic publish: readers see the old entry or the new one,
           never a torn write *)
        Sys.rename tmp path
      with Sys_error _ | Unix.Unix_error _ -> ())

let disk_read t kind ~key =
  match t.t_dir with
  | None -> None
  | Some dir -> (
      t.m_disk_ops <- t.m_disk_ops + 1;
      let path = entry_path dir kind key in
      match
        let ic = open_in_bin path in
        Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
        let len = in_channel_length ic in
        let digest = input_line ic in
        let payload_len = len - String.length digest - 1 in
        if payload_len < 0 then None
        else Some (digest, really_input_string ic payload_len)
      with
      | exception (Sys_error _ | End_of_file | Unix.Unix_error _) -> None
      | None -> None
      | Some (digest, payload) ->
          if String.equal digest (digest_string payload) then Some payload
          else begin
            (* corrupted: evict so the next reader recomputes cleanly *)
            (cnt t kind).m_corruptions <- (cnt t kind).m_corruptions + 1;
            (try Sys.remove path with Sys_error _ -> ());
            None
          end)

(* --- the memory layer --- *)

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let evict_until_fits t kind =
  while t.bytes > t.mem_capacity && Hashtbl.length t.table > 0 do
    let victim = ref None in
    Hashtbl.iter
      (fun k (e : entry) ->
        match !victim with
        | Some (_, v) when v.tick <= e.tick -> ()
        | _ -> victim := Some (k, e))
      t.table;
    match !victim with
    | None -> ()
    | Some (k, e) ->
        Hashtbl.remove t.table k;
        t.bytes <- t.bytes - String.length e.value;
        (cnt t kind).m_evictions <- (cnt t kind).m_evictions + 1
  done

let mem_insert t kind ~key value =
  (match Hashtbl.find_opt t.table (kind, key) with
  | Some old ->
      Hashtbl.remove t.table (kind, key);
      t.bytes <- t.bytes - String.length old.value
  | None -> ());
  let e = { value; tick = 0 } in
  touch t e;
  Hashtbl.replace t.table (kind, key) e;
  t.bytes <- t.bytes + String.length value;
  evict_until_fits t kind

let put t kind ~key value =
  Mutex.protect t.lock @@ fun () ->
  (cnt t kind).m_puts <- (cnt t kind).m_puts + 1;
  mem_insert t kind ~key value;
  disk_write t kind ~key value

let get t kind ~key =
  Mutex.protect t.lock @@ fun () ->
  let c = cnt t kind in
  match Hashtbl.find_opt t.table (kind, key) with
  | Some e ->
      c.m_mem_hits <- c.m_mem_hits + 1;
      touch t e;
      Some e.value
  | None -> (
      c.m_mem_misses <- c.m_mem_misses + 1;
      match disk_read t kind ~key with
      | Some value ->
          c.m_disk_hits <- c.m_disk_hits + 1;
          mem_insert t kind ~key value;
          Some value
      | None ->
          c.m_disk_misses <- c.m_disk_misses + 1;
          None)

let counters t kind = Mutex.protect t.lock @@ fun () -> snapshot (cnt t kind)

let counters_total t =
  Mutex.protect t.lock @@ fun () ->
  List.fold_left (fun acc (_, m) -> counters_add acc (snapshot m)) counters_zero
    t.cn

let disk_ops t = Mutex.protect t.lock @@ fun () -> t.m_disk_ops

let mem_entries t = Mutex.protect t.lock @@ fun () -> Hashtbl.length t.table
let mem_bytes t = Mutex.protect t.lock @@ fun () -> t.bytes

(* --- typed artifact codecs --- *)

module Codec = struct
  let cunit_to_string u = Bytes.unsafe_to_string (Objfile.Obj_io.write u)

  let cunit_of_string s =
    Objfile.Obj_io.read (Bytes.unsafe_of_string s)

  let cunit_digest u = digest_bytes (Objfile.Obj_io.write u)

  (* Marshal is safe here: the payloads reach us only through the store,
     which verifies the content digest before handing bytes back, and a
     well-formed payload of the wrong shape still fails into [Error] below
     rather than escaping as an exception. *)

  let marshal_of_string what s =
    match Marshal.from_string s 0 with
    | v -> Ok v
    | exception (Failure m | Invalid_argument m) ->
        Error (Printf.sprintf "%s: bad marshalled payload: %s" what m)

  let lifted_to_string (ms : Om.Lift.module_sym) = Marshal.to_string ms []

  let lifted_of_string s : (Om.Lift.module_sym, string) result =
    marshal_of_string "lifted module" s

  (* [No_sharing] canonicalizes the bytes: physical sharing inside an
     image varies with how it was produced (fresh lifts vs store
     round-trips), and image digests — the whole-image cache key and the
     daemon's bit-identity story — must depend on content only. The
     image type is acyclic plain data, so the flag is safe. *)
  let image_to_string (i : Linker.Image.t) =
    Marshal.to_string i [ Marshal.No_sharing ]

  let image_of_string s : (Linker.Image.t, string) result =
    marshal_of_string "image" s

  let image_digest i = digest_string (image_to_string i)

  let archive_digest (a : Objfile.Archive.t) =
    digest_bytes (Objfile.Obj_io.write_archive a)
end
