(** The content-addressed artifact store.

    Link artifacts — compiled units, per-module lifts, linked images —
    are cached under digest keys in two layers: an in-memory LRU (bytes
    bounded) over an optional on-disk cache directory. The daemon and the
    incremental relink engine share one store, so a one-module edit hits
    the cache for everything that did not change.

    Disk entries are written atomically (temp file + rename) and carry
    their payload's digest; a read re-hashes the payload and evicts the
    entry on mismatch, so a corrupted or truncated cache file degrades to
    a miss (the caller recomputes) instead of poisoning a link. All
    operations are mutex-protected and safe to call from multiple
    domains. *)

type kind =
  | Cunit   (** compiled object modules, serialized with {!Objfile.Obj_io} *)
  | Lifted  (** per-module symbolic lifts ({!Om.Lift.module_sym}) *)
  | Image   (** linked/optimized executable images *)

val kind_name : kind -> string
val all_kinds : kind list

val digest_string : string -> string
(** Hex content digest (MD5). The one digest function of the system:
    artifact keys, cache re-validation and the measurement harness's
    image keys all use it. *)

val digest_bytes : Bytes.t -> string

type counters = {
  mem_hits : int;
  mem_misses : int;    (** in-memory miss (before consulting disk) *)
  disk_hits : int;
  disk_misses : int;   (** full miss: the caller had to recompute *)
  evictions : int;     (** LRU evictions from the memory layer *)
  corruptions : int;   (** disk entries evicted on digest mismatch *)
  puts : int;
}

val counters_zero : counters
val counters_diff : counters -> counters -> counters
val counters_add : counters -> counters -> counters
val counters_to_alist : counters -> (string * int) list

type t

val default_dir : unit -> string option
(** The on-disk cache directory: [$OMLT_STORE], defaulting to
    ["_omstore"]. [OMLT_STORE=none] (or the empty string) disables the
    disk layer entirely. *)

val create : ?dir:string option -> ?mem_capacity:int -> unit -> t
(** [dir] defaults to {!default_dir}[ ()]; pass [None] for a memory-only
    store. [mem_capacity] bounds the memory layer in payload bytes
    (default 256 MB); least-recently-used entries are evicted when an
    insertion overflows it. The directory is created lazily on first
    write. *)

val in_memory : unit -> t
(** [create ~dir:None ()]. *)

val dir : t -> string option

val put : t -> kind -> key:string -> string -> unit
(** Insert a payload under [key] in both layers. Disk failures (read-only
    directory, full disk) are swallowed: the store is a cache, not a
    database. *)

val get : t -> kind -> key:string -> string option
(** Memory first, then disk (promoting a disk hit into memory). *)

val counters : t -> kind -> counters
(** A snapshot of [kind]'s counters since the store was created. *)

val counters_total : t -> counters

val disk_ops : t -> int
(** Total attempted filesystem operations (reads and writes) since the
    store was created. A memory-only store reports 0 forever; a
    disk-backed store reports 0 deltas on fully-warm requests — the
    daemon's proof that its hot path never leaves memory. *)

val mem_entries : t -> int
val mem_bytes : t -> int

(** Typed serialization of store artifacts.

    The store itself traffics in opaque payload strings; this module maps
    the three artifact kinds to and from them. Compilation units use the
    object-file format (already a total, versioned codec); per-module
    lifts and linked images — internal, plain-data structures — use
    [Marshal], guarded on the way in by the store's digest check and on
    the way out by exception trapping, so a payload that is not a valid
    marshalling of the expected type degrades to a cache miss. *)
module Codec : sig
  val cunit_to_string : Objfile.Cunit.t -> string
  val cunit_of_string : string -> (Objfile.Cunit.t, string) result

  val cunit_digest : Objfile.Cunit.t -> string
  (** Digest of the unit's serialized form — the content key under which
      compiled units and their lifts are stored. *)

  val lifted_to_string : Om.Lift.module_sym -> string
  val lifted_of_string : string -> (Om.Lift.module_sym, string) result

  val image_to_string : Linker.Image.t -> string
  val image_of_string : string -> (Linker.Image.t, string) result

  val image_digest : Linker.Image.t -> string
  (** Content digest of a linked image (over its serialized form). Shared
      with the measurement harness, which keys its decoded-image cache by
      it. *)

  val archive_digest : Objfile.Archive.t -> string
  (** Content digest of a library archive, for building link keys. *)
end
