type build = Compile_each | Compile_all

let build_name = function
  | Compile_each -> "compile-each"
  | Compile_all -> "compile-all"

let all_builds = [ Compile_each; Compile_all ]

let compile build (b : Programs.benchmark) =
  match build with
  | Compile_each ->
      List.map
        (fun (name, src) ->
          Minic.Driver.compile_module ~opt:Minic.Driver.O2
            ~prelude:Runtime.prelude ~name src)
        b.Programs.sources
  | Compile_all ->
      [ Minic.Driver.compile_merged ~opt:Minic.Driver.O2
          ~prelude:Runtime.prelude
          ~name:(b.Programs.name ^ "_all.o")
          b.Programs.sources ]

let resolve build b =
  let units = compile build b in
  Linker.Resolve.run units ~archives:[ Runtime.libstd () ]

(* The cache is shared across domains by the parallel suite runner, so
   every Hashtbl touch happens under the lock. The (deterministic)
   resolve itself runs outside it; two domains racing on the same key
   just compute the same value twice and the second insert wins. *)
let cache : (build * string, Linker.Resolve.t) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()

let compile_cached build b =
  let key = (build, b.Programs.name) in
  let cached =
    Mutex.protect cache_lock (fun () -> Hashtbl.find_opt cache key)
  in
  match cached with
  | Some w -> Ok w
  | None -> (
      match resolve build b with
      | Ok w ->
          Mutex.protect cache_lock (fun () -> Hashtbl.replace cache key w);
          Ok w
      | Error m ->
          (* No [failwith] here: this runs inside Domain-pool workers,
             where an escaped exception would take the whole suite down
             instead of failing one row. *)
          Error
            (Printf.sprintf "suite: %s (%s): %s" b.Programs.name
               (build_name build) m))
