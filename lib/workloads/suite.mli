(** Building the benchmark matrix.

    Two build styles, after the paper's §5:

    - [Compile_each]: each source module is compiled separately with
      intraprocedural optimization only ([-O2] analogue), then linked with
      the standard libraries;
    - [Compile_all]: all the program's sources are compiled as a single
      unit with interprocedural optimization (internalized user procedures,
      inlining), then linked with the same pre-compiled libraries. *)

type build = Compile_each | Compile_all

val build_name : build -> string
val all_builds : build list

val compile : build -> Programs.benchmark -> Objfile.Cunit.t list
(** The program's object modules (libraries not included). Raises
    {!Minic.Driver.Error} on bad source — benchmarks are trusted input. *)

val resolve :
  build -> Programs.benchmark -> (Linker.Resolve.t, string) result
(** Compile and resolve against [libstd]. *)

val compile_cached :
  build -> Programs.benchmark -> (Linker.Resolve.t, string) result
(** Like {!resolve} but memoized per (build, benchmark) — the measurement
    harness calls this repeatedly. Errors come back as [Error] rather
    than an exception so a bad build inside a Domain-pool worker fails
    its own row instead of killing the domain. Safe to call from
    multiple domains concurrently. *)
