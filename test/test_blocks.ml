(* Block/trace-boundary edge cases of the fused superinstruction path
   (Machine.Blocks), plus the probe/trace instrumentation equivalence.

   Every test drives the same image through the three interpreters —
   fused, unfused decoded loop, symbolic reference — and requires
   bit-identical results: outcomes (stats, cycles, cache misses, output,
   exit codes) and faults (kind and carried address/PC) alike. *)

module I = Isa.Insn
module R = Isa.Reg

let image_of_items items =
  let m = Minic.Masm.create "blocks.o" in
  Minic.Masm.add_proc m ~name:"__start" items;
  let unit = Minic.Masm.assemble m in
  match Linker.Link.link [ unit ] ~archives:[] with
  | Ok image -> image
  | Error msg -> Alcotest.failf "link: %s" msg

let exit_with code =
  [ Minic.Masm.Insn (I.Lda { ra = R.a0; rb = code; disp = 0 });
    Minic.Masm.Insn (I.Lda { ra = R.v0; rb = R.zero; disp = 0 });
    Minic.Masm.Insn (I.Call_pal 0x83) ]

let pp_result ppf = function
  | Ok (o : Machine.Cpu.outcome) ->
      Format.fprintf ppf "exit=%Ld insns=%d cycles=%d loads=%d stores=%d \
                          imiss=%d dmiss=%d nops=%d out=%S"
        o.Machine.Cpu.exit_code o.Machine.Cpu.stats.Machine.Cpu.insns
        o.Machine.Cpu.stats.Machine.Cpu.cycles
        o.Machine.Cpu.stats.Machine.Cpu.loads
        o.Machine.Cpu.stats.Machine.Cpu.stores
        o.Machine.Cpu.stats.Machine.Cpu.icache_misses
        o.Machine.Cpu.stats.Machine.Cpu.dcache_misses
        o.Machine.Cpu.stats.Machine.Cpu.nops_executed
        o.Machine.Cpu.output
  | Error e -> Format.fprintf ppf "fault: %a" Machine.Cpu.pp_error e

let result_t = Alcotest.testable pp_result ( = )

(* Run [image] through all three interpreters (the fused path twice, so
   the second pass exercises the warmed executor cache) and require
   identical results. Returns the [Blocks.t] for further inspection. *)
let check_agree ?config name image =
  let d =
    match Machine.Cpu.decode image with
    | Ok d -> d
    | Error e -> Alcotest.failf "%s: decode: %a" name Machine.Cpu.pp_error e
  in
  let blocks = Machine.Blocks.create ?config d in
  let reference = Machine.Cpu.run_reference ?config image in
  let fused_cold = Machine.Cpu.run_decoded ?config ~blocks d in
  let fused_warm = Machine.Cpu.run_decoded ?config ~blocks d in
  let unfused = Machine.Cpu.run_decoded_unfused ?config d in
  Alcotest.check result_t (name ^ ": fused(cold) = reference") reference
    fused_cold;
  Alcotest.check result_t (name ^ ": fused(warm) = reference") reference
    fused_warm;
  Alcotest.check result_t (name ^ ": unfused = reference") reference unfused;
  blocks

(* A loop whose back-edge lands in the middle of the trace fused at the
   program's entry: the first dispatch fuses one long trace through the
   not-taken exit branch; the taken back-edge then enters mid-trace and
   must fuse (and cache) a second, shorter executor at that entry. *)
let test_branch_into_middle () =
  let m = Minic.Masm.create "blocks.o" in
  let l = Minic.Masm.fresh_label m in
  Minic.Masm.add_proc m ~name:"__start"
    ([ Minic.Masm.Insn (I.Lda { ra = R.t0; rb = R.zero; disp = 10 });
       Minic.Masm.Insn (I.Lda { ra = R.t1; rb = R.zero; disp = 0 });
       Minic.Masm.Label l;
       Minic.Masm.Insn
         (I.Op { op = I.Addq; ra = R.t1; rb = I.Rb R.t0; rc = R.t1 });
       Minic.Masm.Insn
         (I.Op { op = I.Subq; ra = R.t0; rb = I.Imm 1; rc = R.t0 });
       Minic.Masm.Branch
         { insn = I.Bcond { cond = I.Bne; ra = R.t0; disp = 0 }; target = l } ]
    @ [ Minic.Masm.Insn (I.Op { op = I.Addq; ra = R.t1; rb = I.Imm 0; rc = R.a0 });
        Minic.Masm.Insn (I.Lda { ra = R.v0; rb = R.zero; disp = 0 });
        Minic.Masm.Insn (I.Call_pal 0x83) ]);
  let unit = Minic.Masm.assemble m in
  let image = Result.get_ok (Linker.Link.link [ unit ] ~archives:[]) in
  let blocks = check_agree "mid-entry loop" image in
  (* sum 10+9+...+1 = 55 must have come out *)
  (match Machine.Blocks.run blocks with
  | Ok o -> Alcotest.(check int64) "loop computed 55" 55L o.Machine.Cpu.exit_code
  | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e);
  (* both the entry trace and the mid-trace back-edge entry are cached *)
  Alcotest.(check bool) "two executors fused" true
    (Machine.Blocks.executors_cached blocks >= 2)

(* A taken branch straight to the exit syscall: the landing entry is a
   single-instruction block. *)
let test_single_insn_block () =
  let m = Minic.Masm.create "blocks.o" in
  let l = Minic.Masm.fresh_label m in
  Minic.Masm.add_proc m ~name:"__start"
    [ Minic.Masm.Insn (I.Lda { ra = R.t0; rb = R.zero; disp = 1 });
      Minic.Masm.Insn (I.Lda { ra = R.a0; rb = R.zero; disp = 7 });
      Minic.Masm.Insn (I.Lda { ra = R.v0; rb = R.zero; disp = 0 });
      Minic.Masm.Branch
        { insn = I.Bcond { cond = I.Bne; ra = R.t0; disp = 0 }; target = l };
      Minic.Masm.Insn I.nop;
      Minic.Masm.Label l;
      Minic.Masm.Insn (I.Call_pal 0x83) ];
  let unit = Minic.Masm.assemble m in
  let image = Result.get_ok (Linker.Link.link [ unit ] ~archives:[]) in
  let blocks = check_agree "single-insn block" image in
  (* entry 5 is the call_pal: a one-instruction block *)
  Alcotest.(check int) "call_pal block has length 1" 1
    (Machine.Blocks.block_len blocks 5);
  match Machine.Blocks.run blocks with
  | Ok o -> Alcotest.(check int64) "skipped the nop path" 7L o.Machine.Cpu.exit_code
  | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e

(* A trace ending in an unknown PAL trap: the fault (kind and code) must
   match the reference, and the straight-line prefix must retire. *)
let test_block_ends_in_unknown_pal () =
  let image =
    image_of_items
      [ Minic.Masm.Insn (I.Lda { ra = R.t0; rb = R.zero; disp = 3 });
        Minic.Masm.Insn
          (I.Op { op = I.Addq; ra = R.t0; rb = I.Rb R.t0; rc = R.t1 });
        Minic.Masm.Insn (I.Call_pal 0x12) ]
  in
  ignore (check_agree "unknown pal" image);
  match Machine.Cpu.run image with
  | Error (Machine.Cpu.Unknown_pal 0x12) -> ()
  | Error e -> Alcotest.failf "wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "expected a fault"

(* A load that faults in the middle of a fused trace, with live code
   after it: the fault payload (the bad address) must agree and the
   instructions after the fault must not execute. *)
let test_fault_mid_block () =
  let image =
    image_of_items
      ([ Minic.Masm.Insn (I.Lda { ra = R.t0; rb = R.zero; disp = 5 });
         Minic.Masm.Insn (I.Ldq { ra = R.t1; rb = R.sp; disp = -13 });
         Minic.Masm.Insn
           (I.Op { op = I.Addq; ra = R.t1; rb = I.Rb R.t0; rc = R.a0 }) ]
      @ exit_with R.a0)
  in
  ignore (check_agree "mid-trace fault" image);
  match Machine.Cpu.run image with
  | Error (Machine.Cpu.Unaligned_access _) -> ()
  | Error e -> Alcotest.failf "wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "expected a fault"

(* Text that simply ends — the last block has no terminator. Execution
   must fall off the end identically on every path (same fault, same
   address). *)
let test_no_terminator () =
  let image =
    image_of_items
      [ Minic.Masm.Insn (I.Lda { ra = R.t0; rb = R.zero; disp = 1 });
        Minic.Masm.Insn I.nop ]
  in
  ignore (check_agree "no terminator" image);
  match Machine.Cpu.run image with
  | Error (Machine.Cpu.Out_of_range_access _) -> ()
  | Error e -> Alcotest.failf "wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "expected a fault"

(* A straight-line run longer than [max_block_len]: the fuser must chain
   capped traces by fall-through without disturbing timing. *)
let test_longer_than_max_block () =
  let n = Machine.Blocks.max_block_len + 90 in
  let body = List.init n (fun _ -> Minic.Masm.Insn I.nop) in
  let image = image_of_items (body @ exit_with R.zero) in
  let blocks = check_agree "overlong straight run" image in
  Alcotest.(check bool) "entry trace is capped" true
    (Machine.Blocks.block_len blocks 0 <= Machine.Blocks.max_block_len)

(* The instruction limit firing inside a fused trace: the fused path
   over-advances by up to a block and must still report the limit at the
   same point as the per-instruction interpreters. *)
let test_insn_limit_mid_block () =
  let m = Minic.Masm.create "blocks.o" in
  let l = Minic.Masm.fresh_label m in
  Minic.Masm.add_proc m ~name:"__start"
    [ Minic.Masm.Label l;
      Minic.Masm.Insn (I.Op { op = I.Addq; ra = R.t0; rb = I.Imm 1; rc = R.t0 });
      Minic.Masm.Insn I.nop;
      Minic.Masm.Insn I.nop;
      Minic.Masm.Branch { insn = I.Br { ra = R.zero; disp = 0 }; target = l } ];
  let unit = Minic.Masm.assemble m in
  let image = Result.get_ok (Linker.Link.link [ unit ] ~archives:[]) in
  (* 1001 is not a multiple of the 4-instruction loop body, so the limit
     lands mid-trace *)
  let config = { Machine.Cpu.default_config with max_insns = 1001 } in
  ignore (check_agree ~config "limit mid-trace" image);
  match Machine.Cpu.run ~config image with
  | Error Machine.Cpu.Insn_limit_reached -> ()
  | Error e -> Alcotest.failf "wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "expected the limit"

(* Executor-cache accounting: a second run of the same [Blocks.t] must
   be all hits, fusing nothing new. *)
let test_cache_counters () =
  let image =
    image_of_items
      ([ Minic.Masm.Insn (I.Lda { ra = R.t0; rb = R.zero; disp = 4 }) ]
      @ exit_with R.zero)
  in
  let d = Result.get_ok (Machine.Cpu.decode image) in
  let blocks = Machine.Blocks.create d in
  (match Machine.Blocks.run blocks with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e);
  let h1, m1 = Machine.Blocks.cache_stats blocks in
  let cached1 = Machine.Blocks.executors_cached blocks in
  Alcotest.(check bool) "first run fused something" true (m1 > 0 && cached1 > 0);
  (match Machine.Blocks.run blocks with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e);
  let h2, m2 = Machine.Blocks.cache_stats blocks in
  Alcotest.(check int) "second run fused nothing" m1 m2;
  Alcotest.(check int) "second run built nothing" cached1
    (Machine.Blocks.executors_cached blocks);
  Alcotest.(check bool) "second run hit the cache" true (h2 > h1)

(* Instrumented runs fall back to the per-instruction loop and must
   reproduce the fused totals exactly; covers Obs.Attr.run_decoded (the
   probe consumer) and the trace hook, plus the dispatch counters. *)
let test_probe_trace_match_fused () =
  let image =
    Testutil.link_std
      [ Testutil.compile
          {|
func main() {
  var s = 0;
  var i = 0;
  while (i < 200) { s = s + i * 3; i = i + 1; }
  io_putint(s);
  return 0;
}
|} ]
  in
  let d = Result.get_ok (Machine.Cpu.decode image) in
  let blocks = Machine.Blocks.create d in
  let fused0, fallback0 = Machine.Cpu.dispatch_counts () in
  let fused =
    match Machine.Cpu.run_decoded ~blocks d with
    | Ok o -> o
    | Error e -> Alcotest.failf "fused fault: %a" Machine.Cpu.pp_error e
  in
  (* the probe path: cycle attribution re-simulation *)
  let attr =
    match Obs.Attr.run_decoded d with
    | Ok a -> a
    | Error e -> Alcotest.failf "attr fault: %a" Machine.Cpu.pp_error e
  in
  Alcotest.(check bool) "probe stats = fused stats" true
    (attr.Obs.Attr.cpu = fused.Machine.Cpu.stats);
  Alcotest.(check string) "probe output = fused output"
    fused.Machine.Cpu.output attr.Obs.Attr.output;
  Alcotest.(check int64) "probe exit = fused exit" fused.Machine.Cpu.exit_code
    attr.Obs.Attr.exit_code;
  Alcotest.(check int) "probe cycles sum to fused cycles"
    fused.Machine.Cpu.stats.Machine.Cpu.cycles
    attr.Obs.Attr.totals.Obs.Attr.p_cycles;
  (* the trace path: must see exactly the retired instruction count *)
  let traced = ref 0 in
  (match
     Machine.Cpu.run_decoded ~blocks ~trace:(fun ~pc:_ _ -> incr traced) d
   with
  | Ok o ->
      Alcotest.(check int) "trace sees every instruction"
        o.Machine.Cpu.stats.Machine.Cpu.insns !traced;
      Alcotest.(check bool) "trace run = fused run" true
        (o = fused)
  | Error e -> Alcotest.failf "trace fault: %a" Machine.Cpu.pp_error e);
  let fused1, fallback1 = Machine.Cpu.dispatch_counts () in
  Alcotest.(check bool) "fused dispatch counted" true (fused1 > fused0);
  (* attr + trace both took the instrumented fallback *)
  Alcotest.(check bool) "fallback dispatches counted" true
    (fallback1 >= fallback0 + 2)

let suite =
  ( "blocks",
    [ Alcotest.test_case "branch into middle of fused trace" `Quick
        test_branch_into_middle;
      Alcotest.test_case "single-instruction block" `Quick
        test_single_insn_block;
      Alcotest.test_case "block ending in unknown pal" `Quick
        test_block_ends_in_unknown_pal;
      Alcotest.test_case "fault mid-trace" `Quick test_fault_mid_block;
      Alcotest.test_case "last block has no terminator" `Quick
        test_no_terminator;
      Alcotest.test_case "straight run longer than max_block_len" `Quick
        test_longer_than_max_block;
      Alcotest.test_case "insn limit fires mid-trace" `Quick
        test_insn_limit_mid_block;
      Alcotest.test_case "executor cache hits and misses" `Quick
        test_cache_counters;
      Alcotest.test_case "probe/trace fallback matches fused totals" `Quick
        test_probe_trace_match_fused ] )
