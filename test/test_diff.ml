(* Differential testing of the two interpreters.

   The decoded fast path (Machine.Cpu.run) and the retained symbolic
   reference interpreter (Machine.Cpu.run_reference) must agree on
   everything observable — stats, program output, exit code — for every
   image the suite can produce: each benchmark, both build styles, the
   standard link and every OM level.

   By default the quick five-benchmark subset runs (the same one
   bench/main.exe quick uses); set OMLT_DIFF_FULL=1 to sweep all
   benchmarks. *)

let diff_subset = [ "alvinn"; "compress"; "li"; "tomcatv"; "spice" ]

let benchmarks () =
  match Sys.getenv_opt "OMLT_DIFF_FULL" with
  | Some ("1" | "true" | "yes") -> Workloads.Programs.all
  | _ -> List.filter_map Workloads.Programs.find diff_subset

let check_outcome what (fast : Machine.Cpu.outcome)
    (ref_ : Machine.Cpu.outcome) =
  Alcotest.(check string) (what ^ ": output") ref_.Machine.Cpu.output
    fast.Machine.Cpu.output;
  Alcotest.(check int64) (what ^ ": exit code") ref_.Machine.Cpu.exit_code
    fast.Machine.Cpu.exit_code;
  let s_f = fast.Machine.Cpu.stats and s_r = ref_.Machine.Cpu.stats in
  Alcotest.(check int) (what ^ ": insns") s_r.Machine.Cpu.insns
    s_f.Machine.Cpu.insns;
  Alcotest.(check int) (what ^ ": cycles") s_r.Machine.Cpu.cycles
    s_f.Machine.Cpu.cycles;
  Alcotest.(check int) (what ^ ": loads") s_r.Machine.Cpu.loads
    s_f.Machine.Cpu.loads;
  Alcotest.(check int) (what ^ ": stores") s_r.Machine.Cpu.stores
    s_f.Machine.Cpu.stores;
  Alcotest.(check int) (what ^ ": icache misses")
    s_r.Machine.Cpu.icache_misses s_f.Machine.Cpu.icache_misses;
  Alcotest.(check int) (what ^ ": dcache misses")
    s_r.Machine.Cpu.dcache_misses s_f.Machine.Cpu.dcache_misses;
  Alcotest.(check int) (what ^ ": nops") s_r.Machine.Cpu.nops_executed
    s_f.Machine.Cpu.nops_executed

let check_image what image =
  match (Machine.Cpu.run image, Machine.Cpu.run_reference image) with
  | Ok fast, Ok ref_ -> check_outcome what fast ref_
  | Error e, Ok _ ->
      Alcotest.failf "%s: fast path faulted (%a), reference ran" what
        Machine.Cpu.pp_error e
  | Ok _, Error e ->
      Alcotest.failf "%s: reference faulted (%a), fast path ran" what
        Machine.Cpu.pp_error e
  | Error ef, Error er ->
      Alcotest.(check string) (what ^ ": same fault")
        (Format.asprintf "%a" Machine.Cpu.pp_error er)
        (Format.asprintf "%a" Machine.Cpu.pp_error ef)

let test_fast_path_matches_reference () =
  List.iter
    (fun (b : Workloads.Programs.benchmark) ->
      List.iter
        (fun build ->
          let what level =
            Printf.sprintf "%s/%s/%s" b.Workloads.Programs.name
              (Workloads.Suite.build_name build) level
          in
          let world =
            match Workloads.Suite.compile_cached build b with
            | Ok w -> w
            | Error m -> Alcotest.failf "%s: %s" (what "compile") m
          in
          (match Linker.Link.link_resolved world with
          | Ok std -> check_image (what "std") std
          | Error m -> Alcotest.failf "%s: link: %s" (what "std") m);
          List.iter
            (fun level ->
              match Om.optimize_resolved level world with
              | Ok { Om.image; _ } ->
                  check_image (what (Om.level_name level)) image
              | Error m ->
                  Alcotest.failf "%s: om: %s" (what (Om.level_name level)) m)
            Om.all_levels)
        Workloads.Suite.all_builds)
    (benchmarks ())

let suite =
  ( "diff",
    [ Alcotest.test_case "fast path matches reference interpreter" `Slow
        test_fast_path_matches_reference ] )
