(* The differential fuzzer itself: generation determinism, oracle
   soundness on a sample of seeds, the shrinking machinery on a known-bad
   program, and regression pins for generator bugs the fuzzer surfaced
   while it was being built. *)

module P = Fuzz.Prog

(* --- determinism --- *)

let test_generation_deterministic () =
  List.iter
    (fun seed ->
      let a = Fuzz.Prog.render (Fuzz.Gen.program seed) in
      let b = Fuzz.Prog.render (Fuzz.Gen.program seed) in
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "seed %d renders identically twice" seed)
        a b)
    [ 0; 1; 42; 1234567; max_int / 3 ]

let test_case_seeds_distinct () =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun seed ->
      for index = 0 to 9 do
        let cs = Fuzz.case_seed ~seed ~index in
        (match Hashtbl.find_opt seen cs with
        | Some (s, i) ->
            Alcotest.failf "case seed collision: (%d,%d) and (%d,%d)" seed
              index s i
        | None -> ());
        Hashtbl.replace seen cs (seed, index)
      done)
    [ 1; 2; 3; 42; 43 ]

let test_campaign_jobs_invariant () =
  (* same report whatever the domain count — the acceptance criterion
     behind `omlink fuzz -j` *)
  let run jobs = Fuzz.campaign ~jobs ~out_dir:None ~seed:42 ~count:6 () in
  let a = run 1 and b = run 2 in
  Alcotest.(check int) "same seed" a.Fuzz.seed b.Fuzz.seed;
  Alcotest.(check int) "same count" a.Fuzz.count b.Fuzz.count;
  Alcotest.(check int) "same failures"
    (List.length a.Fuzz.failed)
    (List.length b.Fuzz.failed)

(* --- the oracles on known-good generated programs --- *)

let test_sample_cases_pass () =
  for index = 0 to 3 do
    let cs = Fuzz.case_seed ~seed:1 ~index in
    match Fuzz.run_case cs with
    | Ok () -> ()
    | Error f ->
        Alcotest.failf "case seed %d: %a" cs Fuzz.Oracle.pp_failure f
  done

(* --- shrinking on a known-bad program ---

   Printing a procedure variable leaks a code address into observable
   output, which legitimately differs across link levels (OM-full deletes
   instructions, so entry points move). The generator never produces such
   a program — which makes it the perfect planted bug: the behavioral
   oracle must catch it, and the shrinker must reduce it without ever
   escaping into a program that fails for a different reason. *)

let address_printing_prog : P.t =
  {
    P.modules =
      [ { P.mname = "m0";
          globals =
            [ P.Gscalar
                { name = "pv0"; static = false; init = 0L; is_pv = true };
              P.Gscalar
                { name = "g0"; static = false; init = 7L; is_pv = false } ];
          funcs =
            [ { P.fname = "f0";
                fstatic = false;
                params = [ P.Pscalar "p0" ];
                body =
                  [ P.Assign ("g0", P.Bin (P.Add, P.Var "g0", P.Var "p0"));
                    P.Ret (P.Var "g0") ] };
              (* f1 lays out after f0; optimizing f0's call bookkeeping
                 at OM-full shifts f1's entry, so the printed address
                 diverges between link levels *)
              { P.fname = "f1";
                fstatic = false;
                params = [ P.Pscalar "p0" ];
                body =
                  [ P.Assign
                      ( "g0",
                        P.Bin
                          ( P.Add,
                            P.Var "g0",
                            P.Call ("f0", [ P.Aexpr (P.Var "p0") ]) ) );
                    P.Ret (P.Var "g0") ] };
              { P.fname = "main";
                fstatic = false;
                params = [];
                body =
                  [ P.TakeAddr ("pv0", "f1");
                    P.Let ("x", P.Call ("f1", [ P.Aexpr (P.Int 3L) ]));
                    P.Print (P.Var "x");
                    (* the planted bug: an address reaches output *)
                    P.Print (P.Var "pv0");
                    P.Ret (P.Int 0L) ] } ] } ]
  }

let test_known_bad_fails_behaviorally () =
  match Fuzz.Oracle.check address_printing_prog with
  | Ok () -> Alcotest.fail "address-printing program passed the oracles"
  | Error f ->
      Alcotest.(check bool)
        (Format.asprintf "failure (%a) is not compile-stage" Fuzz.Oracle.pp_failure f)
        false
        (Fuzz.Oracle.generated_failure f)

let test_shrink_known_bad () =
  match Fuzz.Oracle.check address_printing_prog with
  | Ok () -> Alcotest.fail "address-printing program passed the oracles"
  | Error f ->
      let shrunk, f' = Fuzz.shrink ~max_checks:200 address_printing_prog f in
      Alcotest.(check bool)
        "shrunk program is no larger" true
        (P.size shrunk <= P.size address_printing_prog);
      Alcotest.(check bool)
        "shrunk failure still indicts the pipeline stage class" false
        (Fuzz.Oracle.generated_failure f');
      (* the minimal reproducer must keep the essence: a pv printed *)
      let rendered = String.concat "\n" (List.map snd (P.render shrunk)) in
      Alcotest.(check bool)
        "reproducer still prints the procedure variable" true
        (Astring.String.is_infix ~affix:"io_putint_nl(pv0)" rendered)

let test_write_reproducer () =
  match Fuzz.Oracle.check address_printing_prog with
  | Ok () -> Alcotest.fail "address-printing program passed the oracles"
  | Error f ->
      let shrunk, f' = Fuzz.shrink ~max_checks:60 address_printing_prog f in
      let out_dir = "_fuzz_test_out" in
      let r =
        { Fuzz.r_index = 0;
          r_case_seed = 12345;
          r_failure = f;
          r_prog = address_printing_prog;
          r_shrunk = shrunk;
          r_shrunk_failure = f';
          r_dir = None }
      in
      let dir = Fuzz.write_reproducer ~out_dir ~seed:99 r in
      let readme = Filename.concat dir "README.md" in
      Alcotest.(check bool) "README written" true (Sys.file_exists readme);
      Alcotest.(check bool) "original sources written" true
        (Sys.file_exists (Filename.concat (Filename.concat dir "original") "m0.mc"));
      Alcotest.(check bool) "shrunk sources written" true
        (Sys.file_exists (Filename.concat (Filename.concat dir "shrunk") "m0.mc"));
      (* leave the sandbox clean *)
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Sys.rmdir path
        end
        else Sys.remove path
      in
      rm out_dir

(* --- regression pins from fuzzer-found generator bugs ---

   Campaign seed 1 initially failed 7 of its first 20 cases: negative
   global initializers rendered as [(0 - n)], which the [var x = int;]
   grammar rejects (and the resulting parse recovery cascaded into
   "undefined name" noise). Literals now render as two's-complement hex,
   which the lexer accepts over the full 64-bit range. These programs pin
   both the renderer and the originally-failing campaign cases. *)

let test_negative_initializers_roundtrip () =
  let prog : P.t =
    { P.modules =
        [ { P.mname = "m0";
            globals =
              [ P.Gscalar
                  { name = "g0"; static = false; init = -255L; is_pv = false };
                P.Gscalar
                  { name = "g1";
                    static = false;
                    init = Int64.min_int;
                    is_pv = false };
                P.Gscalar
                  { name = "g2";
                    static = true;
                    init = -2654435761L;
                    is_pv = false } ];
            funcs =
              [ { P.fname = "main";
                  fstatic = false;
                  params = [];
                  body =
                    [ P.Print (P.Var "g0");
                      P.Print (P.Var "g1");
                      P.Print (P.Var "g2");
                      P.Print (P.Int Int64.min_int);
                      P.Print (P.Int (-1L));
                      P.Ret (P.Int 0L) ] } ] } ]
    }
  in
  match Fuzz.Oracle.check prog with
  | Ok () -> ()
  | Error f ->
      Alcotest.failf "negative initializers: %a" Fuzz.Oracle.pp_failure f

let test_originally_failing_seed1_cases () =
  (* the first two compile-stage failures of the seed-1 campaign, by
     their derived case seeds, re-run through all oracles *)
  List.iter
    (fun index ->
      let cs = Fuzz.case_seed ~seed:1 ~index in
      match Fuzz.run_case cs with
      | Ok () -> ()
      | Error f ->
          Alcotest.failf "seed 1 case %d (seed %d): %a" index cs
            Fuzz.Oracle.pp_failure f)
    [ 1; 5 ]

(* --- the fuzzer's first real pipeline catch ---

   Campaign seed 6, case 151 (case seed 4508420191568866293) crashed the
   compiler outright: Invalid_argument("Insn.split32: 2147483647 out of
   range"). [emit_li] guarded the ldah/lda immediate pair with the full
   signed 32-bit span, but the pair only reaches hi*65536 + lo with both
   halves signed 16-bit — top 0x7fff7fff — so the folded constant
   0xffffffff >> 1 = 0x7fffffff slipped past the guard and blew up in
   the encoder. The source below is the campaign's own shrunk reproducer
   (158 → 7 AST nodes), committed verbatim. *)

let test_split32_shrunk_reproducer () =
  let src =
    {|
var g0 = 1000000;
func f3(p0) {
  g0 = (4294967295 >> (1 & 63));
  return 0;
}
func main() {
  return 0;
}
|}
  in
  match Fuzz.Oracle.check_sources [ ("m0", src) ] with
  | Ok () -> ()
  | Error f ->
      Alcotest.failf "split32 reproducer: %a" Fuzz.Oracle.pp_failure f

let test_pair_corner_constants () =
  (* every corner of the ldah/lda-representable span and just beyond it,
     both as materialized immediates and as global initializers *)
  let corners =
    [ 0x7fff7fffL; 0x7fff8000L; 0x7fffffffL; 0x80000000L;
      -2147483648L; -2147516416L; -2147516417L ]
  in
  let prog : P.t =
    { P.modules =
        [ { P.mname = "m0";
            globals =
              List.mapi
                (fun k c ->
                  P.Gscalar
                    { name = Printf.sprintf "c%d" k;
                      static = false;
                      init = c;
                      is_pv = false })
                corners;
            funcs =
              [ { P.fname = "main";
                  fstatic = false;
                  params = [];
                  body =
                    List.map (fun c -> P.Print (P.Int c)) corners
                    @ List.mapi
                        (fun k _ ->
                          P.Print (P.Var (Printf.sprintf "c%d" k)))
                        corners
                    @ [ P.Ret (P.Int 0L) ] } ] } ]
    }
  in
  match Fuzz.Oracle.check prog with
  | Ok () -> ()
  | Error f -> Alcotest.failf "corner constants: %a" Fuzz.Oracle.pp_failure f

let test_displacement_predicate_edges () =
  (* the exact flip points of every span predicate the relaxation and
     the emitters decide by — one off in either direction is the class
     of bug the seed-6 reproducer above caught in the wild *)
  let module I = Isa.Insn in
  List.iter
    (fun (what, ok, v) ->
      Alcotest.(check bool) (Printf.sprintf "%s %d" what v) ok
        (match what with
        | "disp16" -> I.fits_disp16 v
        | "disp21" -> I.fits_disp21 v
        | _ -> I.fits_disp32 v))
    [ ("disp16", true, 32767); ("disp16", false, 32768);
      ("disp16", true, -32768); ("disp16", false, -32769);
      ("disp21", true, 1048575); ("disp21", false, 1048576);
      ("disp21", true, -1048576); ("disp21", false, -1048577);
      ("disp32", true, 0x7fff7fff); ("disp32", false, 0x7fff8000);
      ("disp32", true, -0x80008000); ("disp32", false, -0x80008001) ];
  (* split32_opt agrees with fits_disp32 and actually reconstructs *)
  List.iter
    (fun v ->
      match Isa.Insn.split32_opt v with
      | Some (hi, lo) ->
          Alcotest.(check bool)
            (Printf.sprintf "split32_opt %d in the span" v)
            true (Isa.Insn.fits_disp32 v);
          Alcotest.(check int)
            (Printf.sprintf "split32_opt %d reconstructs" v)
            v
            ((hi * 65536) + lo);
          Alcotest.(check bool)
            (Printf.sprintf "split32_opt %d halves fit" v)
            true
            (Isa.Insn.fits_disp16 hi && Isa.Insn.fits_disp16 lo)
      | None ->
          Alcotest.(check bool)
            (Printf.sprintf "split32_opt %d outside the span" v)
            false (Isa.Insn.fits_disp32 v))
    [ 0; 1; -1; 32767; 32768; -32768; -32769; 0x12345678; -0x12345678;
      0x7fff7fff; 0x7fff8000; -0x80008000; -0x80008001 ]

let test_pair_constant_edges_all_levels () =
  (* the same flip point end to end: the largest pair-buildable constant
     and its successor (which must detour through the literal pool) print
     identically at every link level *)
  let out =
    Testutil.run_all_levels
      {|func main() {
          io_putint(2147450879);
          io_putint(2147450880);
          io_putint(0 - 2147516416);
          io_putint(0 - 2147516417);
          return 0; }|}
  in
  Alcotest.(check string) "edge constants print exactly"
    "21474508792147450880-2147516416-2147516417" out

let test_span_stress_smoke () =
  (* a few span-stress cases through all three oracles: the biased
     generator (GP-window-edge data, padded first procedure, pair-edge
     literals) must still agree with the conservative oracle *)
  for index = 0 to 3 do
    let cs = Fuzz.case_seed ~seed:7 ~index in
    match Fuzz.run_case ~span_stress:true cs with
    | Ok () -> ()
    | Error f ->
        Alcotest.failf "span-stress case %d (seed %d): %a" index cs
          Fuzz.Oracle.pp_failure f
  done

let suite =
  ( "fuzz",
    [ Alcotest.test_case "generation is deterministic" `Quick
        test_generation_deterministic;
      Alcotest.test_case "derived case seeds distinct" `Quick
        test_case_seeds_distinct;
      Alcotest.test_case "campaign invariant under -j" `Slow
        test_campaign_jobs_invariant;
      Alcotest.test_case "sampled cases pass all oracles" `Slow
        test_sample_cases_pass;
      Alcotest.test_case "known-bad program fails behaviorally" `Quick
        test_known_bad_fails_behaviorally;
      Alcotest.test_case "shrinker minimizes the known-bad program" `Slow
        test_shrink_known_bad;
      Alcotest.test_case "reproducer directory round-trips" `Slow
        test_write_reproducer;
      Alcotest.test_case "negative global initializers" `Quick
        test_negative_initializers_roundtrip;
      Alcotest.test_case "originally-failing seed-1 cases" `Slow
        test_originally_failing_seed1_cases;
      Alcotest.test_case "split32 shrunk reproducer (seed 6, case 151)" `Quick
        test_split32_shrunk_reproducer;
      Alcotest.test_case "ldah/lda corner constants" `Quick
        test_pair_corner_constants;
      Alcotest.test_case "displacement predicate edges" `Quick
        test_displacement_predicate_edges;
      Alcotest.test_case "pair constant edges at all levels" `Quick
        test_pair_constant_edges_all_levels;
      Alcotest.test_case "span-stress cases pass all oracles" `Slow
        test_span_stress_smoke ] )
