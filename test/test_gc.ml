(* The om-gc level: link-time dead-code elimination and data-section GC.
   Covers the liveness fixpoint (unreachable-procedure deletion, dead
   data sections with renumbering of the survivors), the PV escape
   refinement (an address held only by dead data no longer pins its
   procedure), size monotonicity against om-full, and the verifier's
   GAT-slot checks on deliberately corrupted images. *)

module I = Isa.Insn
module R = Isa.Reg

let world_of_units units =
  match Linker.Resolve.run units ~archives:[ Runtime.libstd () ] with
  | Ok w -> w
  | Error m -> Alcotest.failf "resolve: %s" m

let world_of src = world_of_units [ Testutil.compile src ]

let std_image world =
  match Linker.Link.link_resolved world with
  | Ok i -> i
  | Error m -> Alcotest.failf "standard link: %s" m

let om_level level world =
  match Om.optimize_resolved level world with
  | Ok r -> r
  | Error m -> Alcotest.failf "%s: %s" (Om.level_name level) m

let output_of image = (Testutil.run_image image).Machine.Cpu.output

let check_same_output what a b =
  Alcotest.(check string) what (output_of a) (output_of b)

let sizes (image : Linker.Image.t) =
  ( Bytes.length image.Linker.Image.text,
    Bytes.length image.Linker.Image.data,
    image.Linker.Image.gat_bytes )

let str_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

let expect_issue what substr image =
  match Om.Verify.check image with
  | Ok () -> Alcotest.failf "%s: verifier passed the corrupted image" what
  | Error m ->
      if not (str_contains m substr) then
        Alcotest.failf "%s: flagged, but not for the planted reason: %s" what m

(* --- unreachable-procedure deletion --- *)

let dead_src = {|
func dead_helper(x) {
  var i = 0;
  var s = 0;
  while (i < x) { s = s + i * i; i = i + 1; }
  return s;
}
func main() { io_putint(42); return 0; }
|}

let test_dead_proc_deleted () =
  let world = world_of dead_src in
  let std = std_image world in
  let full = om_level Om.Full world in
  let gc = om_level Om.Gc world in
  Alcotest.(check bool) "dead_helper survives om-full" true
    (Option.is_some (Linker.Image.find_proc full.Om.image "dead_helper"));
  Alcotest.(check bool) "dead_helper deleted under om-gc" true
    (Option.is_none (Linker.Image.find_proc gc.Om.image "dead_helper"));
  Alcotest.(check bool) "deletion counted" true
    (gc.Om.stats.Om.Stats.procs_deleted >= 1
    && gc.Om.stats.Om.Stats.gc_insns_deleted > 0);
  Alcotest.(check bool) "om-full deletes no procedures" true
    (full.Om.stats.Om.Stats.procs_deleted = 0);
  check_same_output "behavior preserved" std gc.Om.image;
  let gt, _, _ = sizes gc.Om.image and ft, _, _ = sizes full.Om.image in
  Alcotest.(check bool) "om-gc text strictly smaller than om-full" true (gt < ft)

let test_gc_deterministic () =
  let build () = (om_level Om.Gc (world_of dead_src)).Om.image in
  let a = build () and b = build () in
  Alcotest.(check string) "same text"
    (Bytes.to_string a.Linker.Image.text)
    (Bytes.to_string b.Linker.Image.text);
  Alcotest.(check string) "same data"
    (Bytes.to_string a.Linker.Image.data)
    (Bytes.to_string b.Linker.Image.data);
  Alcotest.(check int) "same GAT extent" a.Linker.Image.gat_bytes
    b.Linker.Image.gat_bytes

(* --- PV escape analysis --- *)

(* the address escapes through live code: the procedure must be kept and
   indirect calls through the pointer keep working *)
let test_pv_escape_kept () =
  let world =
    world_of
      {|var fp = 0;
        func pointed(x) { return x * 3; }
        func main() { fp = &pointed; io_putint(fp(14)); return 0; }|}
  in
  let std = std_image world in
  let gc = om_level Om.Gc world in
  Alcotest.(check bool) "pointed survives om-gc" true
    (Option.is_some (Linker.Image.find_proc gc.Om.image "pointed"));
  check_same_output "indirect call still works" std gc.Om.image

(* the address is held only by an initialized quadword in a data section
   nothing references: om-full must treat the procedure as escaping, while
   om-gc drops the section, refines address-taken, and frees the
   procedure's entry-point obligations (its GP setup becomes deletable) *)
let escape_unit () =
  let m = Minic.Masm.create "escape.o" in
  let entry = Minic.Masm.fresh_label m in
  let lo = Minic.Masm.fresh_id m in
  let gl = Minic.Masm.fresh_id m in
  Minic.Masm.add_proc m ~name:"helper"
    [ Minic.Masm.Label entry;
      Minic.Masm.Gpsetup_hi { base = R.pv; anchor = entry; lo };
      Minic.Masm.Gpsetup_lo { id = lo };
      Minic.Masm.Gatload
        { id = gl; ra = R.t0; entry = Objfile.Gat_entry.addr "hval" };
      Minic.Masm.Lituse
        { insn = I.Ldq { ra = R.v0; rb = R.t0; disp = 0 };
          load = gl;
          jsr = false };
      Minic.Masm.Insn (I.Jump { kind = I.Ret; ra = R.zero; rb = R.ra; hint = 1 })
    ];
  Minic.Masm.add_global m ~name:"hval" ~section:`Sdata ~size_bytes:8
    ~init:[| 7L |] ();
  Minic.Masm.add_global m ~name:"escape_ptr" ~section:`Data ~size_bytes:8
    ~refquads:[ (0, "helper", 0) ] ();
  Minic.Masm.assemble m

let test_pv_escape_devirtualized () =
  let main_u =
    Testutil.compile ~name:"emain.o"
      {|extern func helper(x);
        func main() { io_putint(helper(0)); return 0; }|}
  in
  let world = world_of_units [ main_u; escape_unit () ] in
  let std = std_image world in
  let full = om_level Om.Full world in
  let gc = om_level Om.Gc world in
  check_same_output "om-full behavior" std full.Om.image;
  check_same_output "om-gc behavior" std gc.Om.image;
  (* the escaping quadword's section is dead: gone from the gc image *)
  Alcotest.(check bool) "escape_ptr present under om-full" true
    (Option.is_some (Linker.Image.symbol_address full.Om.image "escape_ptr"));
  Alcotest.(check bool) "escape_ptr dropped under om-gc" true
    (Option.is_none (Linker.Image.symbol_address gc.Om.image "escape_ptr"));
  Alcotest.(check bool) "dead data bytes counted" true
    (gc.Om.stats.Om.Stats.data_bytes_deleted >= 8);
  (* with the escape gone, helper's prologue GP setup is deletable too:
     om-gc deletes strictly more setups than om-full on this program *)
  Alcotest.(check bool) "address-taken refinement frees the GP setup" true
    (gc.Om.stats.Om.Stats.gp_setups_deleted
    > full.Om.stats.Om.Stats.gp_setups_deleted)

(* --- data-section GC and renumbering --- *)

let renumber_world () =
  let main_u =
    Testutil.compile ~name:"rmain.o"
      {|extern func get();
        func main() { io_putint(get()); return 0; }|}
  in
  (* the dead module sits between the live ones so its deletion shifts
     every later section: the survivors must renumber and relocate *)
  let dead_u =
    Testutil.compile ~name:"rdead.o"
      {|var deadarr[600];
        func deadfill(n) { deadarr[0] = n; return deadarr[0]; }|}
  in
  let live_u =
    Testutil.compile ~name:"rlive.o"
      {|var shared = 33;
        func get() { return shared; }|}
  in
  world_of_units [ main_u; dead_u; live_u ]

let test_data_section_gc () =
  let world = renumber_world () in
  let std = std_image world in
  let full = om_level Om.Full world in
  let gc = om_level Om.Gc world in
  check_same_output "relocated survivors behave" std gc.Om.image;
  Alcotest.(check bool) "deadarr dropped" true
    (Option.is_none (Linker.Image.symbol_address gc.Om.image "deadarr"));
  Alcotest.(check bool) "shared kept" true
    (Option.is_some (Linker.Image.symbol_address gc.Om.image "shared"));
  Alcotest.(check bool) "deadfill deleted" true
    (Option.is_none (Linker.Image.find_proc gc.Om.image "deadfill"));
  Alcotest.(check bool) "at least the dead array's bytes reclaimed" true
    (gc.Om.stats.Om.Stats.data_bytes_deleted >= 600 * 8);
  let _, gd, _ = sizes gc.Om.image and _, fd, _ = sizes full.Om.image in
  Alcotest.(check bool) "om-gc data segment smaller" true (gd + (600 * 8) <= fd)

(* --- size monotonicity: om-gc never exceeds om-full --- *)

let test_sizes_monotone () =
  List.iter
    (fun world ->
      let full = om_level Om.Full world in
      let gc = om_level Om.Gc world in
      let gt, gd, gg = sizes gc.Om.image and ft, fd, fg = sizes full.Om.image in
      Alcotest.(check bool)
        (Printf.sprintf "gc (%d,%d,%d) <= full (%d,%d,%d)" gt gd gg ft fd fg)
        true
        (gt <= ft && gd <= fd && gg <= fg))
    [ world_of dead_src; renumber_world ();
      world_of
        {|var fp = 0;
          func pointed(x) { return x * 3; }
          func main() { fp = &pointed; io_putint(fp(14)); return 0; }|} ]

(* --- corrupted images: the verifier's GAT-slot checks --- *)

let gat_slot_src = {|
var g = 5;
func helper(x) { g = g + x; return g; }
func main() { io_putint(helper(7)); return 0; }
|}

(* find a GAT address-slot load whose loaded value feeds an indirect jump
   ([jump = true]: a call through the slot) or a memory access
   ([jump = false]: a global accessed through the slot); returns the
   slot's absolute address. Mirrors the verifier's forward scan. *)
let find_slot (image : Linker.Image.t) ~jump =
  let insns = Linker.Image.insns image in
  let n = Array.length insns in
  let found = ref None in
  Array.iteri
    (fun k i ->
      if !found = None then
        match i with
        | I.Ldq { ra; rb; disp } when R.equal rb R.gp && not (R.equal ra R.gp)
          -> (
            let addr = image.Linker.Image.text_base + (4 * k) in
            match Linker.Image.proc_containing image addr with
            | None -> ()
            | Some p ->
                let ea = p.Linker.Image.gp_value + disp in
                if
                  ea >= image.Linker.Image.gat_base
                  && ea + 8
                     <= image.Linker.Image.gat_base
                        + image.Linker.Image.gat_bytes
                then
                  let rec scan j =
                    if j < n then
                      match insns.(j) with
                      | I.Jump { rb; _ } when R.equal rb ra ->
                          if jump then found := Some ea
                      | (I.Ldq { rb; _ } | I.Stq { rb; _ }) when R.equal rb ra
                        ->
                          if not jump then found := Some ea
                      | u ->
                          if I.is_branch u || List.exists (R.equal ra) (I.defs u)
                          then ()
                          else scan (j + 1)
                  in
                  scan (k + 1))
        | _ -> ())
    insns;
  match !found with
  | Some ea -> ea
  | None -> Alcotest.fail "no suitable GAT-slot load in the image"

let patch_slot (image : Linker.Image.t) ea v =
  let data = Bytes.copy image.Linker.Image.data in
  Bytes.set_int64_le data
    (ea - image.Linker.Image.data_base)
    (Int64.of_int v);
  { image with Linker.Image.data }

let corrupt_setup () =
  let image = std_image (world_of gat_slot_src) in
  (match Om.Verify.check image with
  | Ok () -> ()
  | Error m -> Alcotest.failf "clean standard image rejected: %s" m);
  image

(* a call slot retargeted into a procedure body — the signature a buggy
   GC leaves when the slot's procedure was deleted and the space reused *)
let test_verify_stale_call_slot () =
  let image = corrupt_setup () in
  let helper =
    match Linker.Image.find_proc image "helper" with
    | Some p -> p
    | None -> Alcotest.fail "no helper procedure"
  in
  let slot = find_slot image ~jump:true in
  let mid = helper.Linker.Image.entry + helper.Linker.Image.size - 4 in
  expect_issue "call into a deleted procedure" "not a procedure entry"
    (patch_slot image slot mid)

(* an address slot pointing past the shrunken data segment — a slot that
   still names a datum the GC reclaimed *)
let test_verify_stale_data_slot () =
  let image = corrupt_setup () in
  let slot = find_slot image ~jump:false in
  let beyond =
    image.Linker.Image.data_base + Bytes.length image.Linker.Image.data + 4096
  in
  expect_issue "GAT slot referencing GC'd data" "via GAT slot"
    (patch_slot image slot beyond)

(* a zeroed slot — the dangling-relocation shape *)
let test_verify_dangling_slot () =
  let image = corrupt_setup () in
  let slot = find_slot image ~jump:true in
  expect_issue "dangling relocation" "not a procedure entry"
    (patch_slot image slot 0)

(* --- level taxonomy: every frontend derives from Om.all_levels --- *)

let test_level_roundtrip () =
  Alcotest.(check int) "five levels" 5 (List.length Om.all_levels);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "%s round-trips" (Om.level_name l))
        true
        (Om.level_of_string (Om.level_name l) = Some l))
    Om.all_levels;
  Alcotest.(check bool) "short alias gc" true
    (Om.level_of_string "gc" = Some Om.Gc);
  Alcotest.(check bool) "short alias sched" true
    (Om.level_of_string "sched" = Some Om.Full_sched);
  Alcotest.(check bool) "unknown rejected" true
    (Om.level_of_string "om-mega" = None)

let test_all_levels_agree () =
  ignore
    (Testutil.run_all_levels
       {|
var fp = 0;
var unused_tab[64];
func dead(x) { unused_tab[x & 63] = x; return unused_tab[0]; }
func alive(x) { return x * 3; }
func main() { fp = &alive; io_putint(fp(14)); return 0; }
|})

let suite =
  ( "gc",
    [ Alcotest.test_case "unreachable procedure deleted" `Quick
        test_dead_proc_deleted;
      Alcotest.test_case "om-gc deterministic" `Quick test_gc_deterministic;
      Alcotest.test_case "pv escape via live code kept" `Quick
        test_pv_escape_kept;
      Alcotest.test_case "pv escape via dead data devirtualized" `Quick
        test_pv_escape_devirtualized;
      Alcotest.test_case "data-section GC renumbers survivors" `Quick
        test_data_section_gc;
      Alcotest.test_case "om-gc never larger than om-full" `Quick
        test_sizes_monotone;
      Alcotest.test_case "verify: stale call slot" `Quick
        test_verify_stale_call_slot;
      Alcotest.test_case "verify: stale data slot" `Quick
        test_verify_stale_data_slot;
      Alcotest.test_case "verify: dangling slot" `Quick
        test_verify_dangling_slot;
      Alcotest.test_case "level taxonomy round-trips" `Quick
        test_level_roundtrip;
      Alcotest.test_case "all levels agree on mixed program" `Quick
        test_all_levels_agree ] )
