(* End-to-end tests over real suite benchmarks: every build style and
   optimization level must agree bit-for-bit on program output, and the
   static statistics must satisfy the paper's qualitative claims. *)

let quick_benchmarks = [ "li"; "compress"; "tomcatv"; "spice"; "eqntott" ]

let get name =
  match Workloads.Programs.find name with
  | Some b -> b
  | None -> Alcotest.failf "unknown benchmark %s" name

let measure name build =
  match Reports.Measure.run_benchmark build (get name) with
  | Ok r -> r
  | Error m -> Alcotest.failf "%s: %s" name m

let test_outputs_agree name () =
  List.iter
    (fun build ->
      let r = measure name build in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s outputs agree" name
           (Workloads.Suite.build_name build))
        true r.Reports.Measure.outputs_agree;
      Alcotest.(check bool) "output is nonempty" true
        (String.length r.Reports.Measure.std_output > 0))
    Workloads.Suite.all_builds

let stats_exn r level =
  match Reports.Measure.stats_of r level with
  | Some s -> s
  | None -> Alcotest.fail "missing stats"

let test_paper_claims name () =
  let r = measure name Workloads.Suite.Compile_each in
  let simple = stats_exn r Om.Simple in
  let full = stats_exn r Om.Full in
  (* OM-simple never changes the instruction count; OM-full shrinks it *)
  Alcotest.(check int) "simple preserves size" simple.Om.Stats.insns_before
    simple.Om.Stats.insns_after;
  Alcotest.(check bool) "full shrinks the program" true
    (full.Om.Stats.insns_after < full.Om.Stats.insns_before);
  (* address loads: full removes at least as many as simple *)
  Alcotest.(check bool) "full removes at least as many address loads" true
    (full.Om.Stats.addr_converted + full.Om.Stats.addr_nullified
    >= simple.Om.Stats.addr_converted + simple.Om.Stats.addr_nullified);
  (* essentially all jsr calls become bsr under both levels *)
  Alcotest.(check bool) "jsr mostly gone (simple)" true
    (simple.Om.Stats.jsr_after * 4 <= simple.Om.Stats.jsr_before);
  (* GP-reset and PV-load requirements only improve with effort *)
  Alcotest.(check bool) "pv: full <= simple" true
    (full.Om.Stats.calls_pv_after <= simple.Om.Stats.calls_pv_after);
  Alcotest.(check bool) "reset: full <= simple" true
    (full.Om.Stats.calls_reset_after <= simple.Om.Stats.calls_reset_after);
  (* GAT reduction is dramatic under full *)
  Alcotest.(check bool) "GAT shrinks by more than half" true
    (full.Om.Stats.gat_bytes_after * 2 < full.Om.Stats.gat_bytes_before)

let test_compile_all_calls_cheaper () =
  (* under compile-all, fewer call sites need bookkeeping to begin with
     (the compiler optimized user-to-user calls), but library calls keep
     the fraction high — the paper's core observation *)
  let r_each = measure "li" Workloads.Suite.Compile_each in
  let r_all = measure "li" Workloads.Suite.Compile_all in
  let s_each = stats_exn r_each Om.Simple in
  let s_all = stats_exn r_all Om.Simple in
  let frac (s : Om.Stats.t) =
    float_of_int s.Om.Stats.calls_pv_before /. float_of_int (max 1 s.Om.Stats.calls)
  in
  Alcotest.(check bool) "compile-all needs fewer pv loads up front" true
    (frac s_all <= frac s_each);
  Alcotest.(check bool) "but far from zero (library calls remain)" true
    (frac s_all > 0.3)

let test_dynamic_improvement_band () =
  (* the headline effect: OM-full should help li (a very call-dense
     program) by several percent, and never corrupt it *)
  let r = measure "li" Workloads.Suite.Compile_each in
  let imp = Reports.Measure.improvement r Om.Full in
  Alcotest.(check bool)
    (Printf.sprintf "li improves by >2%% (got %.2f%%)" imp)
    true (imp > 2.)

let test_insn_counts_drop_under_full () =
  let r = measure "compress" Workloads.Suite.Compile_each in
  let full_run =
    List.find (fun (x : Reports.Measure.run) -> x.level = Om.Full) r.Reports.Measure.runs
  in
  Alcotest.(check bool) "dynamic instructions drop" true
    (full_run.Reports.Measure.insns < r.Reports.Measure.std_insns)

let test_all_benchmarks_compile () =
  (* every benchmark of the suite at least compiles and resolves in both
     build styles (full dynamic checks run in the benchmark harness) *)
  List.iter
    (fun (b : Workloads.Programs.benchmark) ->
      List.iter
        (fun build ->
          match Workloads.Suite.resolve build b with
          | Ok _ -> ()
          | Error m ->
              Alcotest.failf "%s (%s): %s" b.name
                (Workloads.Suite.build_name build) m)
        Workloads.Suite.all_builds)
    Workloads.Programs.all

let test_timing_harness () =
  let t =
    match Reports.Measure.time_builds (get "li") with
    | Ok t -> t
    | Error m -> Alcotest.failf "time_builds: %s" m
  in
  Alcotest.(check bool) "timings positive" true
    (t.Reports.Measure.t_std_link >= 0.
    && List.for_all (fun (_, v) -> v >= 0.) t.Reports.Measure.t_om);
  (* one timed OM column per level, in all_levels order *)
  Alcotest.(check (list string)) "om columns cover all levels"
    (List.map Om.level_name Om.all_levels)
    (List.map (fun (l, _) -> Om.level_name l) t.Reports.Measure.t_om);
  (* the interprocedural rebuild includes compilation, so it costs more
     than a standard link — the paper's Figure 7 argument *)
  Alcotest.(check bool) "interproc build slower than standard link" true
    (t.Reports.Measure.t_interproc > t.Reports.Measure.t_std_link)

let suite =
  ( "integration",
    List.map
      (fun name ->
        Alcotest.test_case
          (Printf.sprintf "%s agrees at all levels" name)
          `Slow (test_outputs_agree name))
      quick_benchmarks
    @ [ Alcotest.test_case "paper claims (li)" `Slow (test_paper_claims "li");
        Alcotest.test_case "paper claims (compress)" `Slow
          (test_paper_claims "compress");
        Alcotest.test_case "paper claims (tomcatv)" `Slow
          (test_paper_claims "tomcatv");
        Alcotest.test_case "compile-all call bookkeeping" `Slow
          test_compile_all_calls_cheaper;
        Alcotest.test_case "dynamic improvement band" `Slow
          test_dynamic_improvement_band;
        Alcotest.test_case "dynamic instruction drop" `Slow
          test_insn_counts_drop_under_full;
        Alcotest.test_case "all benchmarks compile" `Slow
          test_all_benchmarks_compile;
        Alcotest.test_case "timing harness" `Slow test_timing_harness ] )

(* --- determinism and budget --- *)

let test_suite_deterministic () =
  let b = get "compress" in
  let run () =
    let w =
      match Workloads.Suite.compile_cached Workloads.Suite.Compile_each b with
      | Ok w -> w
      | Error m -> Alcotest.fail m
    in
    let img = Result.get_ok (Linker.Link.link_resolved w) in
    match Machine.Cpu.run img with
    | Ok o -> (o.Machine.Cpu.output, o.Machine.Cpu.stats.Machine.Cpu.cycles)
    | Error _ -> Alcotest.fail "fault"
  in
  let a = run () and b' = run () in
  Alcotest.(check string) "same output" (fst a) (fst b');
  Alcotest.(check int) "same cycles" (snd a) (snd b')

let test_suite_budget () =
  (* keep the harness usable: no benchmark may exceed 40M instructions *)
  List.iter
    (fun (b : Workloads.Programs.benchmark) ->
      let w =
        match Workloads.Suite.compile_cached Workloads.Suite.Compile_each b with
        | Ok w -> w
        | Error m -> Alcotest.fail m
      in
      let img = Result.get_ok (Linker.Link.link_resolved w) in
      match Machine.Cpu.run img with
      | Ok o ->
          Alcotest.(check bool)
            (Printf.sprintf "%s within budget (%d insns)" b.name
               o.Machine.Cpu.stats.Machine.Cpu.insns)
            true
            (o.Machine.Cpu.stats.Machine.Cpu.insns < 40_000_000)
      | Error e ->
          Alcotest.failf "%s faults: %a" b.name Machine.Cpu.pp_error e)
    Workloads.Programs.all

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [ Alcotest.test_case "suite determinism" `Slow test_suite_deterministic;
        Alcotest.test_case "suite instruction budget" `Slow test_suite_budget ] )
