module I = Isa.Insn
module R = Isa.Reg

let compile = Testutil.compile

let resolve ?entry units archives = Linker.Resolve.run ?entry units ~archives

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_duplicate_definition () =
  let a = compile ~name:"a.o" {|func f() { return 1; } func main() { return f(); }|} in
  let b = compile ~name:"b.o" {|func f() { return 2; }|} in
  match resolve [ a; b ] [ Runtime.libstd () ] with
  | Error m ->
      Alcotest.(check bool) "mentions the symbol" true
        (contains ~affix:"f" m)
  | Ok _ -> Alcotest.fail "expected duplicate-definition error"

let test_undefined_symbol () =
  let a =
    compile ~name:"a.o"
      {|extern func ghost(); func main() { return ghost(); }|}
  in
  match resolve [ a ] [ Runtime.libstd () ] with
  | Error m ->
      Alcotest.(check bool) "mentions ghost" true
        (contains ~affix:"ghost" m)
  | Ok _ -> Alcotest.fail "expected undefined-symbol error"

let test_missing_entry () =
  let a = compile ~name:"a.o" {|func not_main() { return 0; }|} in
  match resolve [ a ] [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected missing-entry error"

let test_local_symbols_do_not_collide () =
  let a =
    compile ~name:"a.o"
      {|static var secret = 1;
        static func peek() { return secret; }
        func geta() { return peek(); }|}
  in
  let b =
    compile ~name:"b.o"
      {|static var secret = 2;
        static func peek() { return secret; }
        func getb() { return peek(); }
        extern func geta();
        func main() {
          io_putint(geta() * 10 + getb());
          return 0; }|}
  in
  let image = Testutil.link_std [ a; b ] in
  Alcotest.(check string) "each module sees its own statics" "12"
    (Testutil.run_image image).Machine.Cpu.output

let test_commons_merge () =
  (* the same common at different sizes: max wins, both modules share it *)
  let a =
    compile ~name:"a.o"
      {|var blk[4];
        func seta() { blk[0] = 11; return 0; }|}
  in
  let b =
    compile ~name:"b.o"
      {|var blk[8];
        extern func seta();
        func main() {
          seta();
          blk[7] = 22;
          io_putint(blk[0] * 100 + blk[7]);
          return 0; }|}
  in
  let world =
    match resolve [ a; b ] [ Runtime.libstd () ] with
    | Ok w -> w
    | Error m -> Alcotest.failf "resolve: %s" m
  in
  let blk =
    Array.to_list world.Linker.Resolve.objs
    |> List.find (fun (o : Linker.Resolve.obj_rec) -> o.o_name = "blk")
  in
  Alcotest.(check int) "max size wins" 64 blk.Linker.Resolve.o_size;
  (match blk.Linker.Resolve.o_placement with
  | Linker.Resolve.Common -> ()
  | _ -> Alcotest.fail "blk should be a common");
  let image = Result.get_ok (Linker.Link.link_resolved world) in
  Alcotest.(check string) "shared storage" "1122"
    (Testutil.run_image image).Machine.Cpu.output

let test_archive_pull_on_demand () =
  (* a program using only io_putint must not pull the sort module *)
  let a = compile ~name:"a.o" {|func main() { io_putint(1); return 0; }|} in
  let world =
    match resolve [ a ] [ Runtime.libstd () ] with
    | Ok w -> w
    | Error m -> Alcotest.failf "resolve: %s" m
  in
  let module_names =
    Array.to_list world.Linker.Resolve.modules
    |> List.map (fun (u : Objfile.Cunit.t) -> u.name)
  in
  Alcotest.(check bool) "sys.o pulled" true (List.mem "sys.o" module_names);
  Alcotest.(check bool) "crt0 pulled" true (List.mem "crt0.o" module_names);
  Alcotest.(check bool) "sort.o not pulled" false
    (List.mem "sort.o" module_names)

let test_gat_merge_dedups () =
  (* two modules referencing the same global share one merged slot *)
  let a =
    compile ~name:"a.o" {|var shared = 0;
                          func fa() { shared = shared + 1; return shared; }|}
  in
  let b =
    compile ~name:"b.o"
      {|extern var shared;
        extern func fa();
        func main() { fa(); io_putint(shared); return 0; }|}
  in
  let world =
    match resolve [ a; b ] [ Runtime.libstd () ] with
    | Ok w -> w
    | Error m -> Alcotest.failf "resolve: %s" m
  in
  let gat = Linker.Gat.merge world in
  Alcotest.(check int) "one group" 1 gat.Linker.Gat.ngroups;
  let keys = Array.to_list gat.Linker.Gat.slots in
  let distinct = List.sort_uniq compare keys in
  Alcotest.(check int) "slots are distinct" (List.length distinct)
    (List.length keys)

let test_gat_grouping_capacity () =
  let a = compile ~name:"a.o" {|var x = 0; var y = 0;
                                func main() { x = y + 1; io_putint(x); return 0; }|} in
  let world =
    match resolve [ a ] [ Runtime.libstd () ] with
    | Ok w -> w
    | Error m -> Alcotest.failf "resolve: %s" m
  in
  (* absurdly small capacity forces one group per module *)
  let gat = Linker.Gat.merge ~capacity:3 world in
  Alcotest.(check bool) "several groups" true (gat.Linker.Gat.ngroups > 1);
  (* procedures of the same module share a group *)
  Array.iteri
    (fun m _ ->
      Alcotest.(check bool) "group id valid" true
        (gat.Linker.Gat.group_of_module.(m) < gat.Linker.Gat.ngroups))
    world.Linker.Resolve.modules;
  (* the multi-group program still links and runs *)
  match Linker.Link.link_resolved ~gat_capacity:3 world with
  | Ok image ->
      Alcotest.(check string) "multi-GAT program runs" "1"
        (Testutil.run_image image).Machine.Cpu.output
  | Error m -> Alcotest.failf "multi-group link failed: %s" m

let test_literal_displacements_in_window () =
  let a = compile ~name:"a.o" {|var g = 3;
                                func main() { io_putint(g); return 0; }|} in
  let image = Testutil.link_std [ a ] in
  (* every ldq rX, d(gp) must point inside the image's GAT *)
  let insns = Linker.Image.insns image in
  Array.iter
    (fun (p : Linker.Image.proc_info) ->
      if p.uses_gp then
        let first = (p.entry - image.Linker.Image.text_base) / 4 in
        for k = first to first + (p.size / 4) - 1 do
          match insns.(k) with
          | I.Ldq { rb; disp; _ } when R.equal rb R.gp ->
              let addr = p.gp_value + disp in
              Alcotest.(check bool) "GAT slot within table" true
                (addr >= image.Linker.Image.gat_base
                && addr < image.Linker.Image.gat_base + image.Linker.Image.gat_bytes)
          | _ -> ()
        done)
    image.Linker.Image.procs

let test_image_metadata () =
  let a = compile ~name:"a.o" {|func main() { return 0; }|} in
  let image = Testutil.link_std [ a ] in
  (match Linker.Image.validate image with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid image: %s" m);
  Alcotest.(check bool) "main found" true
    (Option.is_some (Linker.Image.find_proc image "main"));
  Alcotest.(check bool) "entry is __start" true
    (match Linker.Image.proc_containing image image.Linker.Image.entry with
    | Some p -> String.equal p.name "__start"
    | None -> false);
  Alcotest.(check bool) "symbol map has main" true
    (Option.is_some (Linker.Image.symbol_address image "main"))

let test_gp_anchor_patch () =
  (* decode a procedure's GP setup and check it computes its gp_value *)
  let a = compile ~name:"a.o" {|var g = 5;
                                func main() { io_putint(g); return 0; }|} in
  let image = Testutil.link_std [ a ] in
  let p = Option.get (Linker.Image.find_proc image "main") in
  Alcotest.(check bool) "main uses gp" true p.Linker.Image.uses_gp;
  let insns = Linker.Image.insns image in
  let first = (p.entry - image.Linker.Image.text_base) / 4 in
  (* find the ldah gp,(pv) and lda gp,(gp) pair in the prologue *)
  let hi = ref None and lo = ref None in
  for k = first to first + (p.size / 4) - 1 do
    match insns.(k) with
    | I.Ldah { ra; rb; disp } when R.equal ra R.gp && R.equal rb R.pv ->
        if !hi = None then hi := Some disp
    | I.Lda { ra; rb; disp } when R.equal ra R.gp && R.equal rb R.gp ->
        if !lo = None then lo := Some disp
    | _ -> ()
  done;
  match (!hi, !lo) with
  | Some hi, Some lo ->
      Alcotest.(check int) "gp = entry + hi<<16 + lo" p.gp_value
        (p.entry + (hi * 65536) + lo)
  | _ -> Alcotest.fail "no GP setup pair found in main"

let test_gpdisp_out_of_range_is_link_error () =
  (* a corrupt GPDISP anchor pushes the GP displacement past the 32-bit
     ldah/lda split: the linker must answer with a structured error, not
     an exception out of split32 *)
  let a = compile ~name:"a.o" {|func main() { return 0; }|} in
  let corrupt =
    { a with
      Objfile.Cunit.relocs =
        Objfile.Reloc.v ~section:Objfile.Section.Text ~offset:0
          (Objfile.Reloc.Gpdisp { anchor = -0x7000_0000; pair = 4 })
        :: a.Objfile.Cunit.relocs }
  in
  match Linker.Link.link [ corrupt ] ~archives:[ Runtime.libstd () ] with
  | Ok _ -> Alcotest.fail "expected a GPDISP range error"
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "error names GPDISP (got %S)" m)
        true
        (contains ~affix:"GPDISP" m)

let suite =
  ( "linker",
    [ Alcotest.test_case "duplicate definition" `Quick test_duplicate_definition;
      Alcotest.test_case "undefined symbol" `Quick test_undefined_symbol;
      Alcotest.test_case "missing entry" `Quick test_missing_entry;
      Alcotest.test_case "local symbols isolated" `Quick
        test_local_symbols_do_not_collide;
      Alcotest.test_case "commons merge" `Quick test_commons_merge;
      Alcotest.test_case "archive pull on demand" `Quick
        test_archive_pull_on_demand;
      Alcotest.test_case "GAT dedup" `Quick test_gat_merge_dedups;
      Alcotest.test_case "GAT grouping" `Quick test_gat_grouping_capacity;
      Alcotest.test_case "literal displacements" `Quick
        test_literal_displacements_in_window;
      Alcotest.test_case "image metadata" `Quick test_image_metadata;
      Alcotest.test_case "GPDISP patching" `Quick test_gp_anchor_patch;
      Alcotest.test_case "GPDISP out of range is a link error" `Quick
        test_gpdisp_out_of_range_is_link_error ] )
