(* The load-test subsystem: deterministic program generation, selfhosted
   end-to-end runs against a real daemon (bit-identity enforced by the
   harness itself), coalescing on the duplicate mix, and the schema-v6
   report round-trip. *)

let test_program_deterministic () =
  let p1 = Load.program ~seed:7 3 and p2 = Load.program ~seed:7 3 in
  Alcotest.(check bool) "same seed and id, same program" true (p1 = p2);
  Alcotest.(check bool) "distinct ids differ" true
    (Load.program ~seed:7 4 <> p1);
  Alcotest.(check bool) "distinct seeds differ" true
    (Load.program ~seed:8 3 <> p1);
  Alcotest.(check int) "two modules" 2 (List.length p1);
  (* the mix is a pure function of the spec *)
  let spec = { Load.default_spec with Load.requests = 32 } in
  let ids () = List.init 32 (Load.program_id spec) in
  Alcotest.(check (list int)) "mix replays" (ids ()) (ids ())

let run_ok spec ~workers =
  match Load.run_selfhosted ~workers spec with
  | Ok r -> r
  | Error m -> Alcotest.failf "load run failed: %s" m

let test_selfhosted_mixed () =
  let spec =
    { Load.default_spec with
      Load.profile = Load.Mixed;
      clients = 6;
      requests = 24;
      retries = 4 }
  in
  let r = run_ok spec ~workers:2 in
  Alcotest.(check int) "every request succeeded" 24 r.Load.r_ok;
  Alcotest.(check int) "no hard failures" 0 r.Load.r_failed;
  Alcotest.(check int) "no timeouts" 0 r.Load.r_timeouts;
  (* the load harness checks every reply against a serial in-process
     oracle: this is the concurrent bit-identity assertion *)
  Alcotest.(check int) "all replies bit-identical to serial links" 0
    r.Load.r_mismatched;
  Alcotest.(check int) "one latency sample per request" 24
    (Array.length r.Load.r_latencies_us);
  Alcotest.(check bool) "throughput positive" true (Load.throughput_rps r > 0.);
  Alcotest.(check bool) "p99 >= p50" true
    (Load.quantile_us r 0.99 >= Load.quantile_us r 0.50)

let test_selfhosted_dup_coalesces () =
  let spec =
    { Load.default_spec with
      Load.profile = Load.Dup;
      clients = 6;
      requests = 24;
      retries = 4 }
  in
  let r = run_ok spec ~workers:2 in
  Alcotest.(check int) "every request succeeded" 24 r.Load.r_ok;
  Alcotest.(check int) "all replies bit-identical" 0 r.Load.r_mismatched;
  Alcotest.(check bool) "duplicates coalesced" true (r.Load.r_coalesced > 0)

let test_report_load_roundtrip () =
  let spec =
    { Load.default_spec with Load.profile = Load.Cold; clients = 2;
      requests = 4 }
  in
  let r = run_ok spec ~workers:1 in
  let report = Obs.Report.make ~load:(Load.to_report_load r) [] in
  match Obs.Report.of_json (Obs.Report.to_json report) with
  | Error m -> Alcotest.failf "report reparse failed: %s" m
  | Ok back -> (
      Alcotest.(check int) "stamped v6+" Obs.Report.schema_version
        back.Obs.Report.version;
      match back.Obs.Report.load with
      | None -> Alcotest.fail "load record lost in round-trip"
      | Some l ->
          Alcotest.(check string) "profile survives" "cold"
            l.Obs.Report.l_profile;
          Alcotest.(check int) "ok count survives" 4 l.Obs.Report.l_ok;
          Alcotest.(check int) "latency samples survive" 4
            l.Obs.Report.l_latency.Obs.Report.q_count)

let suite =
  ( "load",
    [ Alcotest.test_case "program generation is deterministic" `Quick
        test_program_deterministic;
      Alcotest.test_case "selfhosted mixed run: all ok, bit-identical" `Quick
        test_selfhosted_mixed;
      Alcotest.test_case "duplicate mix coalesces" `Quick
        test_selfhosted_dup_coalesces;
      Alcotest.test_case "schema-v6 load record round-trips" `Quick
        test_report_load_roundtrip ] )
