module I = Isa.Insn
module R = Isa.Reg

(* Build a runnable image from raw instructions via the normal pipeline,
   so the machine tests exercise real linked code. *)
let image_of_insns insns =
  let m = Minic.Masm.create "m.o" in
  Minic.Masm.add_proc m ~name:"__start" insns;
  let unit = Minic.Masm.assemble m in
  match Linker.Link.link [ unit ] ~archives:[] with
  | Ok image -> image
  | Error msg -> Alcotest.failf "link: %s" msg

let exit_with code =
  [ Minic.Masm.Insn (I.Lda { ra = R.a0; rb = code; disp = 0 });
    Minic.Masm.Insn (I.Lda { ra = R.v0; rb = R.zero; disp = 0 });
    Minic.Masm.Insn (I.Call_pal 0x83) ]

let run insns =
  match Machine.Cpu.run (image_of_insns insns) with
  | Ok o -> o
  | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e

let test_cache () =
  let c = Machine.Cache.create ~size_bytes:64 ~line_bytes:32 in
  Alcotest.(check bool) "first access misses" false (Machine.Cache.access c 0);
  Alcotest.(check bool) "same line hits" true (Machine.Cache.access c 24);
  Alcotest.(check bool) "second line misses" false (Machine.Cache.access c 32);
  (* 64-byte direct-mapped: address 64 maps to line 0 again *)
  Alcotest.(check bool) "conflict evicts" false (Machine.Cache.access c 64);
  Alcotest.(check bool) "original line was evicted" false
    (Machine.Cache.access c 0);
  Alcotest.(check int) "misses counted" 4 (Machine.Cache.misses c);
  Machine.Cache.reset c;
  Alcotest.(check int) "reset clears" 0 (Machine.Cache.misses c)

let test_arithmetic () =
  (* v0=6*7 via mulq; exit with it *)
  let o =
    run
      ([ Minic.Masm.Insn (I.Lda { ra = R.t0; rb = R.zero; disp = 6 });
         Minic.Masm.Insn (I.Lda { ra = R.t1; rb = R.zero; disp = 7 });
         Minic.Masm.Insn (I.Op { op = I.Mulq; ra = R.t0; rb = I.Rb R.t1; rc = R.a0 });
         Minic.Masm.Insn (I.Lda { ra = R.v0; rb = R.zero; disp = 0 });
         Minic.Masm.Insn (I.Call_pal 0x83) ])
  in
  Alcotest.(check int64) "6*7" 42L o.Machine.Cpu.exit_code

let test_memory () =
  (* store then load through sp *)
  let o =
    run
      [ Minic.Masm.Insn (I.Lda { ra = R.t0; rb = R.zero; disp = 1234 });
        Minic.Masm.Insn (I.Stq { ra = R.t0; rb = R.sp; disp = -16 });
        Minic.Masm.Insn (I.Ldq { ra = R.a0; rb = R.sp; disp = -16 });
        Minic.Masm.Insn (I.Lda { ra = R.v0; rb = R.zero; disp = 0 });
        Minic.Masm.Insn (I.Call_pal 0x83) ]
  in
  Alcotest.(check int64) "store/load" 1234L o.Machine.Cpu.exit_code

let test_unaligned_faults () =
  let image =
    image_of_insns
      [ Minic.Masm.Insn (I.Ldq { ra = R.t0; rb = R.sp; disp = -13 });
        Minic.Masm.Insn (I.Call_pal 0x83) ]
  in
  match Machine.Cpu.run image with
  | Error (Machine.Cpu.Unaligned_access _) -> ()
  | Error e -> Alcotest.failf "wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "expected a fault"

let test_wild_address_faults () =
  let image =
    image_of_insns
      [ Minic.Masm.Insn (I.Ldq { ra = R.t0; rb = R.zero; disp = 16 });
        Minic.Masm.Insn (I.Call_pal 0x83) ]
  in
  match Machine.Cpu.run image with
  | Error (Machine.Cpu.Out_of_range_access _) -> ()
  | Error e -> Alcotest.failf "wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "expected a fault"

let test_insn_limit () =
  let m = Minic.Masm.create "loop.o" in
  let l = Minic.Masm.fresh_label m in
  Minic.Masm.add_proc m ~name:"__start"
    [ Minic.Masm.Label l;
      Minic.Masm.Branch { insn = I.Br { ra = R.zero; disp = 0 }; target = l } ];
  let unit = Minic.Masm.assemble m in
  let image = Result.get_ok (Linker.Link.link [ unit ] ~archives:[]) in
  let config = { Machine.Cpu.default_config with max_insns = 1000 } in
  match Machine.Cpu.run ~config image with
  | Error Machine.Cpu.Insn_limit_reached -> ()
  | Error e -> Alcotest.failf "wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "expected the limit to fire"

let test_output_syscalls () =
  let out = Testutil.run_src {|
func main() {
  io_putint(0 - 42);
  io_putchar(10);
  io_puts("hi");
  io_newline();
  return 0;
}
|} in
  Alcotest.(check string) "stdout" "-42\nhi\n" out

let test_sbrk () =
  let out = Testutil.run_src {|
func main() {
  var p = alloc(4);
  var q = alloc(4);
  p[0] = 5;
  q[0] = 7;
  io_putint(q - p);
  io_putchar(10);
  io_putint(p[0] + q[0]);
  return 0;
}
|} in
  Alcotest.(check string) "bump allocation" "32\n12" out

let test_branch_timing () =
  (* a taken branch must cost at least one extra cycle over fall-through *)
  let straight =
    run
      ([ Minic.Masm.Insn I.nop; Minic.Masm.Insn I.nop ] @ exit_with R.zero)
  in
  let m = Minic.Masm.create "b.o" in
  let l = Minic.Masm.fresh_label m in
  Minic.Masm.add_proc m ~name:"__start"
    ([ Minic.Masm.Branch { insn = I.Br { ra = R.zero; disp = 0 }; target = l };
       Minic.Masm.Insn I.nop;
       Minic.Masm.Label l ]
    @ exit_with R.zero);
  let unit = Minic.Masm.assemble m in
  let image = Result.get_ok (Linker.Link.link [ unit ] ~archives:[]) in
  let branchy =
    match Machine.Cpu.run image with
    | Ok o -> o
    | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e
  in
  Alcotest.(check bool) "taken branch costs a bubble" true
    (branchy.Machine.Cpu.stats.Machine.Cpu.cycles
     >= straight.Machine.Cpu.stats.Machine.Cpu.cycles)

let test_dual_issue_effect () =
  (* the same program runs in fewer cycles with dual issue enabled *)
  let src = {|
func main() {
  var s = 0;
  var i = 0;
  while (i < 1000) { s = s + i * 3; i = i + 1; }
  io_putint(s);
  return 0;
}
|} in
  let image = Testutil.link_std [ Testutil.compile src ] in
  let dual = Testutil.run_image image in
  let single =
    match
      Machine.Cpu.run
        ~config:{ Machine.Cpu.default_config with dual_issue = false }
        image
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e
  in
  Alcotest.(check string) "same output" dual.Machine.Cpu.output
    single.Machine.Cpu.output;
  Alcotest.(check bool) "dual issue is faster" true
    (dual.Machine.Cpu.stats.Machine.Cpu.cycles
     < single.Machine.Cpu.stats.Machine.Cpu.cycles)

let test_cycles_at_least_insns () =
  let o = run (exit_with R.zero) in
  Alcotest.(check bool) "cycles >= insns/2" true
    (o.Machine.Cpu.stats.Machine.Cpu.cycles
     >= o.Machine.Cpu.stats.Machine.Cpu.insns / 2)

let test_cache_hits_and_reset () =
  let c = Machine.Cache.create ~size_bytes:128 ~line_bytes:32 in
  ignore (Machine.Cache.access c 0);
  ignore (Machine.Cache.access c 8);
  ignore (Machine.Cache.access c 31);
  Alcotest.(check int) "two hits on line 0" 2 (Machine.Cache.hits c);
  Alcotest.(check int) "one miss on line 0" 1 (Machine.Cache.misses c);
  (* 128 and 0 alias in a 128-byte direct-mapped cache; 32 does not *)
  Alcotest.(check bool) "line 1 misses" false (Machine.Cache.access c 32);
  Alcotest.(check bool) "aliased line misses" false
    (Machine.Cache.access c 128);
  Alcotest.(check bool) "alias evicted line 0" false
    (Machine.Cache.access c 0);
  Alcotest.(check bool) "line 1 survives the alias war" true
    (Machine.Cache.access c 40);
  Alcotest.(check int) "hits tallied" 3 (Machine.Cache.hits c);
  Alcotest.(check int) "misses tallied" 4 (Machine.Cache.misses c);
  Machine.Cache.reset c;
  Alcotest.(check int) "reset clears hits" 0 (Machine.Cache.hits c);
  Alcotest.(check int) "reset clears misses" 0 (Machine.Cache.misses c);
  Alcotest.(check bool) "reset empties the lines" false
    (Machine.Cache.access c 40)

let test_unknown_pal () =
  let image = image_of_insns [ Minic.Masm.Insn (I.Call_pal 0x12) ] in
  (match Machine.Cpu.run image with
  | Error (Machine.Cpu.Unknown_pal 0x12) -> ()
  | Error e -> Alcotest.failf "wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "expected a fault");
  match Machine.Cpu.run_reference image with
  | Error (Machine.Cpu.Unknown_pal 0x12) -> ()
  | Error e ->
      Alcotest.failf "reference: wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "reference: expected a fault"

let test_bad_syscall_is_not_unknown_pal () =
  (* callsys with a bogus code in v0: Bad_syscall, never Unknown_pal *)
  let image =
    image_of_insns
      [ Minic.Masm.Insn (I.Lda { ra = R.v0; rb = R.zero; disp = 99 });
        Minic.Masm.Insn (I.Call_pal 0x83) ]
  in
  match Machine.Cpu.run image with
  | Error (Machine.Cpu.Bad_syscall 99L) -> ()
  | Error e -> Alcotest.failf "wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "expected a fault"

let test_undecodable_reports_real_pc () =
  (* corrupt the second instruction word: the fault must carry that PC,
     not the image base *)
  let image = image_of_insns (exit_with R.zero) in
  let text = Bytes.copy image.Linker.Image.text in
  Bytes.set_int32_le text 4 0x10000000l (* opcode 0x04: unassigned *);
  let image = { image with Linker.Image.text } in
  let expect name = function
    | Error (Machine.Cpu.Undecodable pc) ->
        Alcotest.(check int)
          (name ^ " names the offending pc")
          (image.Linker.Image.text_base + 4)
          pc
    | Error e -> Alcotest.failf "%s: wrong fault: %a" name Machine.Cpu.pp_error e
    | Ok _ -> Alcotest.failf "%s: expected a decode fault" name
  in
  expect "fast path" (Machine.Cpu.run image);
  expect "reference" (Machine.Cpu.run_reference image)

let mask_of_regs regs =
  List.fold_left
    (fun m r ->
      let i = R.to_int r in
      if i = 31 then m else m lor (1 lsl i))
    0 regs

let test_masks_match_lists () =
  let samples =
    [ I.Lda { ra = R.t0; rb = R.sp; disp = 8 };
      I.Ldah { ra = R.gp; rb = R.t11; disp = 1 };
      I.Ldq { ra = R.a0; rb = R.gp; disp = -16 };
      I.Stq { ra = R.t1; rb = R.sp; disp = 0 };
      I.Br { ra = R.zero; disp = 3 };
      I.Bsr { ra = R.ra; disp = -2 };
      I.Bcond { cond = I.Beq; ra = R.t2; disp = 1 };
      I.Jump { kind = I.Jsr; ra = R.ra; rb = R.pv; hint = 0 };
      I.Jump { kind = I.Ret; ra = R.zero; rb = R.ra; hint = 0 };
      I.Op { op = I.Addq; ra = R.t0; rb = I.Rb R.t1; rc = R.t2 };
      I.Op { op = I.Subq; ra = R.t3; rb = I.Imm 5; rc = R.zero };
      I.Call_pal 0x83;
      I.nop ]
  in
  List.iter
    (fun insn ->
      Alcotest.(check int)
        (Format.asprintf "defs mask of %a" I.pp insn)
        (mask_of_regs (I.defs insn))
        (I.defs_mask insn);
      Alcotest.(check int)
        (Format.asprintf "uses mask of %a" I.pp insn)
        (mask_of_regs (I.uses insn))
        (I.uses_mask insn))
    samples

let suite =
  ( "machine",
    [ Alcotest.test_case "direct-mapped cache" `Quick test_cache;
      Alcotest.test_case "arithmetic" `Quick test_arithmetic;
      Alcotest.test_case "memory" `Quick test_memory;
      Alcotest.test_case "unaligned access faults" `Quick test_unaligned_faults;
      Alcotest.test_case "wild address faults" `Quick test_wild_address_faults;
      Alcotest.test_case "instruction limit" `Quick test_insn_limit;
      Alcotest.test_case "output system calls" `Quick test_output_syscalls;
      Alcotest.test_case "sbrk allocation" `Quick test_sbrk;
      Alcotest.test_case "branch timing" `Quick test_branch_timing;
      Alcotest.test_case "dual issue speeds up" `Quick test_dual_issue_effect;
      Alcotest.test_case "cycle sanity" `Quick test_cycles_at_least_insns;
      Alcotest.test_case "cache hits, aliasing, reset" `Quick
        test_cache_hits_and_reset;
      Alcotest.test_case "unknown palcode faults" `Quick test_unknown_pal;
      Alcotest.test_case "bad syscall is not unknown pal" `Quick
        test_bad_syscall_is_not_unknown_pal;
      Alcotest.test_case "undecodable fault carries real pc" `Quick
        test_undecodable_reports_real_pc;
      Alcotest.test_case "uses/defs masks match lists" `Quick
        test_masks_match_lists ] )

let test_trace_hook () =
  let image = Testutil.link_std [ Testutil.compile {|func main() { return 3; }|} ] in
  let traced = ref 0 in
  let calls = ref 0 in
  (match Machine.Cpu.run ~trace:(fun ~pc:_ insn ->
       incr traced;
       if Isa.Insn.is_call insn then incr calls)
       image with
  | Ok o ->
      Alcotest.(check int) "trace sees every instruction" o.Machine.Cpu.stats.Machine.Cpu.insns
        !traced;
      (* crt0 calls main: at least one call *)
      Alcotest.(check bool) "calls observed" true (!calls >= 1)
  | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e)

let suite =
  let name, cases = suite in
  (name, cases @ [ Alcotest.test_case "trace hook" `Quick test_trace_hook ])
