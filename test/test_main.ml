let () =
  Alcotest.run "omlt"
    [ Test_isa.suite; Test_objfile.suite; Test_machine.suite; Test_blocks.suite; Test_minic.suite; Test_linker.suite; Test_om.suite; Test_gc.suite; Test_relax.suite; Test_runtime.suite; Test_obs.suite; Test_integration.suite; Test_more.suite; Test_diff.suite; Test_fuzz.suite; Test_parallel.suite; Test_store.suite; Test_server.suite; Test_sched.suite; Test_load.suite ]
