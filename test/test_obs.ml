(* The observability layer: JSON round-trips, span tracing, cycle
   attribution, and the versioned suite-report schema. *)

let json = Alcotest.testable (Fmt.of_to_string Obs.Json.to_string) ( = )

(* --- Json --- *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.Obj
      [ ("null", Obs.Json.Null);
        ("yes", Obs.Json.Bool true);
        ("n", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 3.25);
        ("big", Obs.Json.Float 1.5e300);
        ("s", Obs.Json.String "a \"quoted\"\nline\twith \\ and \x01 ctrl");
        ("empty_list", Obs.Json.List []);
        ("empty_obj", Obs.Json.Obj []);
        ( "nested",
          Obs.Json.List
            [ Obs.Json.Int 1;
              Obs.Json.Obj [ ("k", Obs.Json.List [ Obs.Json.Bool false ]) ] ]
        ) ]
  in
  List.iter
    (fun minify ->
      match Obs.Json.parse (Obs.Json.to_string ~minify doc) with
      | Ok parsed -> Alcotest.check json "round-trips" doc parsed
      | Error m -> Alcotest.failf "parse failed: %s" m)
    [ true; false ]

let test_json_parse () =
  let ok s v =
    match Obs.Json.parse s with
    | Ok p -> Alcotest.check json s v p
    | Error m -> Alcotest.failf "%s: %s" s m
  in
  ok "[1, 2.5, -3]"
    (Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Int (-3) ]);
  ok {|"Aé☃"|} (Obs.Json.String "A\xc3\xa9\xe2\x98\x83");
  ok {|"😀"|} (Obs.Json.String "\xf0\x9f\x98\x80");
  ok "1e3" (Obs.Json.Float 1000.);
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "1 2"; "nul" ]

(* --- Trace --- *)

let test_trace_disabled () =
  Alcotest.(check bool) "no ambient collector" false (Obs.Trace.active ());
  Alcotest.(check int) "span is transparent" 7
    (Obs.Trace.span "x" (fun () -> 7))

let test_trace_spans () =
  let c, v =
    Obs.Trace.with_collector (fun () ->
        Obs.Trace.span "outer" (fun () ->
            Obs.Trace.span
              ~counters:(fun () -> [ ("k", 3); ("zero", 0) ])
              "inner"
              (fun () -> 1 + 1)))
  in
  Alcotest.(check int) "value" 2 v;
  Alcotest.(check bool) "collector uninstalled after" false
    (Obs.Trace.active ());
  let spans = Obs.Trace.spans c in
  Alcotest.(check (list string)) "names in start order" [ "outer"; "inner" ]
    (List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.name) spans);
  Alcotest.(check (list int)) "depths" [ 0; 1 ]
    (List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.depth) spans);
  let inner = List.nth spans 1 in
  Alcotest.(check (list (pair string int))) "counters" [ ("k", 3); ("zero", 0) ]
    inner.Obs.Trace.counters

let test_trace_chrome_json () =
  (* trace a real OM link, export, and re-parse the trace-event JSON *)
  let unit =
    Testutil.compile
      {|
func main() { io_put_labeled("x", 41 + 1); return 0; }
|}
  in
  let c, _ = Obs.Trace.with_collector (fun () -> Testutil.om_link [ unit ]) in
  Alcotest.(check bool) "recorded pipeline spans" true
    (List.length (Obs.Trace.spans c) >= 5);
  let text = Obs.Json.to_string (Obs.Trace.to_chrome_json c) in
  match Obs.Json.parse text with
  | Error m -> Alcotest.failf "chrome trace does not re-parse: %s" m
  | Ok (Obs.Json.List events) ->
      Alcotest.(check bool) "has events" true (List.length events >= 5);
      List.iter
        (fun ev ->
          let str name =
            Option.bind (Obs.Json.member name ev) Obs.Json.get_string
          in
          let num name =
            Option.bind (Obs.Json.member name ev) Obs.Json.get_float
          in
          Alcotest.(check (option string)) "ph" (Some "X") (str "ph");
          Alcotest.(check bool) "has name" true (str "name" <> None);
          Alcotest.(check bool) "ts >= 0" true
            (match num "ts" with Some t -> t >= 0. | None -> false);
          Alcotest.(check bool) "dur >= 0" true
            (match num "dur" with Some d -> d >= 0. | None -> false))
        events;
      let names =
        List.filter_map
          (fun ev -> Option.bind (Obs.Json.member "name" ev) Obs.Json.get_string)
          events
      in
      List.iter
        (fun expected ->
          Alcotest.(check bool) (expected ^ " span present") true
            (List.mem expected names))
        [ "om:om-full"; "lift"; "transform:full"; "lower"; "verify" ]
  | Ok _ -> Alcotest.fail "chrome trace is not a JSON array"

(* --- Attr --- *)

(* Two procedures with very different dynamic weight: [work] burns the
   cycles walking a global table; [main] only calls it a few times. *)
let two_proc_src =
  {|
var table[512];
var acc = 0;

func work(rounds) {
  var i = 0;
  while (i < rounds) {
    var j = 0;
    while (j < 512) { table[j] = table[j] + i; j = j + 1; }
    acc = acc + table[i & 511];
    i = i + 1;
  }
  return acc;
}

func main() {
  io_put_labeled("acc", work(20));
  return 0;
}
|}

let two_proc_world () =
  match
    Linker.Resolve.run
      [ Testutil.compile two_proc_src ]
      ~archives:[ Runtime.libstd () ]
  with
  | Ok w -> w
  | Error m -> Alcotest.failf "resolve failed: %s" m

let profile image =
  match Obs.Attr.run image with
  | Ok p -> p
  | Error e -> Alcotest.failf "profile fault: %a" Machine.Cpu.pp_error e

let test_attr_two_procs () =
  let world = two_proc_world () in
  let std =
    match Linker.Link.link_resolved world with
    | Ok i -> i
    | Error m -> Alcotest.failf "std link: %s" m
  in
  let p = profile std in
  (* counts land on the right proc_info *)
  let work =
    match Obs.Attr.proc p "work" with
    | Some w -> w
    | None -> Alcotest.fail "no profile for work"
  in
  let main =
    match Obs.Attr.proc p "main" with
    | Some m -> m
    | None -> Alcotest.fail "no profile for main"
  in
  Alcotest.(check bool) "work dominates main" true
    (work.Obs.Attr.p_cycles > 10 * main.Obs.Attr.p_cycles);
  Alcotest.(check bool) "every pc mapped to a procedure" true
    (Obs.Attr.proc p "?" = None);
  (* per-procedure tallies are a partition of the run *)
  let sum f = List.fold_left (fun acc q -> acc + f q) 0 p.Obs.Attr.procs in
  Alcotest.(check int) "insns partition"
    p.Obs.Attr.cpu.Machine.Cpu.insns
    (sum (fun q -> q.Obs.Attr.p_insns));
  Alcotest.(check int) "insns total"
    p.Obs.Attr.cpu.Machine.Cpu.insns p.Obs.Attr.totals.Obs.Attr.p_insns;
  Alcotest.(check int) "cycles partition"
    p.Obs.Attr.cpu.Machine.Cpu.cycles
    (sum (fun q -> q.Obs.Attr.p_cycles));
  Alcotest.(check int) "cycles total"
    p.Obs.Attr.cpu.Machine.Cpu.cycles p.Obs.Attr.totals.Obs.Attr.p_cycles;
  Alcotest.(check int) "icache misses total"
    p.Obs.Attr.cpu.Machine.Cpu.icache_misses p.Obs.Attr.totals.Obs.Attr.p_imiss;
  Alcotest.(check int) "dcache misses total"
    p.Obs.Attr.cpu.Machine.Cpu.dcache_misses p.Obs.Attr.totals.Obs.Attr.p_dmiss;
  (* category buckets partition each procedure *)
  List.iter
    (fun q ->
      let cat_insns =
        List.fold_left
          (fun acc c -> acc + (Obs.Attr.bucket q c).Obs.Attr.b_insns)
          0 Obs.Attr.all_categories
      in
      Alcotest.(check int)
        (q.Obs.Attr.pname ^ " buckets partition its insns")
        q.Obs.Attr.p_insns cat_insns)
    p.Obs.Attr.procs;
  (* the standard link of a global-heavy loop pays real GAT overhead *)
  Alcotest.(check bool) "std has address loads" true
    ((Obs.Attr.bucket work Obs.Attr.Addr_load).Obs.Attr.b_insns > 0);
  Alcotest.(check bool) "std has gp setups" true
    ((Obs.Attr.bucket p.Obs.Attr.totals Obs.Attr.Gp_setup).Obs.Attr.b_insns > 0)

let test_attr_full_shrinks_overhead () =
  let world = two_proc_world () in
  let std =
    match Linker.Link.link_resolved world with
    | Ok i -> i
    | Error m -> Alcotest.failf "std link: %s" m
  in
  let full =
    match Om.optimize_resolved Om.Full world with
    | Ok { Om.image; _ } -> image
    | Error m -> Alcotest.failf "om-full: %s" m
  in
  let p0 = profile std in
  let p1 = profile full in
  Alcotest.(check string) "outputs agree" p0.Obs.Attr.output p1.Obs.Attr.output;
  let overhead p =
    List.fold_left
      (fun acc c -> acc + (Obs.Attr.bucket p.Obs.Attr.totals c).Obs.Attr.b_cycles)
      0
      [ Obs.Attr.Addr_load; Obs.Attr.Gp_setup; Obs.Attr.Pv_load ]
  in
  Alcotest.(check bool) "om-full shrinks address-calculation cycles" true
    (overhead p1 < overhead p0)

(* --- probe consistency (the machine-level contract Attr relies on) --- *)

let test_probe_sums () =
  let image = Testutil.link_std [ Testutil.compile two_proc_src ] in
  let cycles = ref 0 in
  let insns = ref 0 in
  let imiss = ref 0 in
  let dmiss = ref 0 in
  let o =
    match
      Machine.Cpu.run
        ~probe:(fun ev ->
          incr insns;
          cycles := !cycles + ev.Machine.Cpu.ev_cycles;
          if ev.Machine.Cpu.ev_icache_miss then incr imiss;
          if ev.Machine.Cpu.ev_dcache_miss then incr dmiss)
        image
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e
  in
  Alcotest.(check int) "probe insns" o.Machine.Cpu.stats.Machine.Cpu.insns !insns;
  Alcotest.(check int) "probe cycles sum to stats.cycles"
    o.Machine.Cpu.stats.Machine.Cpu.cycles !cycles;
  Alcotest.(check int) "probe icache misses"
    o.Machine.Cpu.stats.Machine.Cpu.icache_misses !imiss;
  Alcotest.(check int) "probe dcache misses"
    o.Machine.Cpu.stats.Machine.Cpu.dcache_misses !dmiss

(* --- Report --- *)

let sample_report () =
  Obs.Report.make ~tool:"test"
    [ { Obs.Report.bench = "two_proc";
        build = "compile-each";
        std_cycles = 123456;
        std_insns = 789;
        std_attribution =
          Some
            [ ("addr_load", { Obs.Report.insns = 10; cycles = 31 });
              ("other", { Obs.Report.insns = 700; cycles = 900 }) ];
        std_fault = None;
        outputs_agree = true;
        runs =
          [ { Obs.Report.level = "om-full";
              cycles = 100000;
              insns = 700;
              improvement_pct = 19.0;
              counters = [ ("addr_loads", 14); ("gp_setups_deleted", 6) ];
              attribution = None;
              fault = None;
              host = Some { Obs.Report.wall_s = 0.25; mips = 12.5 } };
            { Obs.Report.level = "om-full+sched";
              cycles = 0;
              insns = 0;
              improvement_pct = 0.;
              counters = [];
              attribution = None;
              fault = Some "heap exhausted";
              host = None } ];
        std_host = Some { Obs.Report.wall_s = 0.5; mips = 10.0 };
        relink = Some { Obs.Report.cold_s = 0.2; warm_s = 0.05 } } ]

let test_report_roundtrip () =
  let r = sample_report () in
  let path = Filename.temp_file "obs_report" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Report.write path r;
  match Obs.Report.read path with
  | Error m -> Alcotest.failf "read failed: %s" m
  | Ok r' ->
      Alcotest.check json "report round-trips" (Obs.Report.to_json r)
        (Obs.Report.to_json r')

let test_report_rejects_future_schema () =
  match
    Obs.Report.of_json
      (Obs.Json.Obj
         [ ("schema_version", Obs.Json.Int (Obs.Report.schema_version + 1));
           ("tool", Obs.Json.String "t");
           ("results", Obs.Json.List []) ])
  with
  | Ok _ -> Alcotest.fail "accepted an unknown schema version"
  | Error m ->
      Alcotest.(check bool) "error names the version" true
        (Astring.String.is_infix ~affix:"schema_version" m)

let test_report_accepts_v1 () =
  (* a v1 document predates the host-throughput fields: it must still
     parse, with [host]/[std_host] surfaced as [None] *)
  match
    Obs.Report.of_json
      (Obs.Json.Obj
         [ ("schema_version", Obs.Json.Int 1);
           ("tool", Obs.Json.String "t");
           ( "results",
             Obs.Json.List
               [ Obs.Json.Obj
                   [ ("bench", Obs.Json.String "b");
                     ("build", Obs.Json.String "compile-each");
                     ("std_cycles", Obs.Json.Int 10);
                     ("std_insns", Obs.Json.Int 5);
                     ("std_attribution", Obs.Json.Null);
                     ("std_fault", Obs.Json.Null);
                     ("outputs_agree", Obs.Json.Bool true);
                     ( "runs",
                       Obs.Json.List
                         [ Obs.Json.Obj
                             [ ("level", Obs.Json.String "om-full");
                               ("cycles", Obs.Json.Int 7);
                               ("insns", Obs.Json.Int 3);
                               ("improvement_pct", Obs.Json.Float 30.0);
                               ("counters", Obs.Json.Obj []);
                               ("attribution", Obs.Json.Null);
                               ("fault", Obs.Json.Null) ] ] ) ] ] ) ])
  with
  | Error m -> Alcotest.failf "v1 document rejected: %s" m
  | Ok r ->
      let b = List.hd r.Obs.Report.results in
      Alcotest.(check bool) "std_host is None" true
        (b.Obs.Report.std_host = None);
      Alcotest.(check bool) "run host is None" true
        ((List.hd b.Obs.Report.runs).Obs.Report.host = None)

let test_report_accepts_v2 () =
  (* a v2 document predates the link-service timings: it must still
     parse, with [relink] surfaced as [None] *)
  match
    Obs.Report.of_json
      (Obs.Json.Obj
         [ ("schema_version", Obs.Json.Int 2);
           ("tool", Obs.Json.String "t");
           ( "results",
             Obs.Json.List
               [ Obs.Json.Obj
                   [ ("bench", Obs.Json.String "b");
                     ("build", Obs.Json.String "compile-each");
                     ("std_cycles", Obs.Json.Int 10);
                     ("std_insns", Obs.Json.Int 5);
                     ("std_attribution", Obs.Json.Null);
                     ("std_fault", Obs.Json.Null);
                     ("outputs_agree", Obs.Json.Bool true);
                     ( "std_host",
                       Obs.Json.Obj
                         [ ("wall_s", Obs.Json.Float 0.5);
                           ("mips", Obs.Json.Float 10.0) ] );
                     ("runs", Obs.Json.List []) ] ] ) ])
  with
  | Error m -> Alcotest.failf "v2 document rejected: %s" m
  | Ok r ->
      let b = List.hd r.Obs.Report.results in
      Alcotest.(check bool) "relink is None" true (b.Obs.Report.relink = None);
      Alcotest.(check bool) "std_host survives" true
        (b.Obs.Report.std_host <> None)

let test_suite_json_roundtrip () =
  (* the exact path behind [omlink suite --json]: measure, convert, print,
     re-read through the schema reader *)
  let b =
    match Workloads.Programs.find "compress" with
    | Some b -> b
    | None -> Alcotest.fail "compress benchmark missing"
  in
  let r =
    match Reports.Measure.run_benchmark Workloads.Suite.Compile_each b with
    | Ok r -> r
    | Error m -> Alcotest.failf "measure failed: %s" m
  in
  let report = Reports.Report_json.of_matrix ~attribution:true [ r ] in
  let text = Obs.Json.to_string (Obs.Report.to_json report) in
  match Result.bind (Obs.Json.parse text) Obs.Report.of_json with
  | Error m -> Alcotest.failf "round-trip failed: %s" m
  | Ok report' -> (
      Alcotest.check json "suite report round-trips"
        (Obs.Report.to_json report)
        (Obs.Report.to_json report');
      let bench = List.hd report'.Obs.Report.results in
      Alcotest.(check string) "bench name" "compress" bench.Obs.Report.bench;
      Alcotest.(check int) "level rows" (List.length Om.all_levels)
        (List.length bench.Obs.Report.runs);
      match bench.Obs.Report.std_attribution with
      | None -> Alcotest.fail "attribution missing"
      | Some buckets ->
          Alcotest.(check bool) "every category present" true
            (List.for_all
               (fun c -> List.mem_assoc (Obs.Attr.category_name c) buckets)
               Obs.Attr.all_categories))

let suite =
  ( "obs",
    [ Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "json parse" `Quick test_json_parse;
      Alcotest.test_case "trace disabled by default" `Quick test_trace_disabled;
      Alcotest.test_case "trace spans" `Quick test_trace_spans;
      Alcotest.test_case "trace chrome json" `Quick test_trace_chrome_json;
      Alcotest.test_case "attribution: two procedures" `Quick
        test_attr_two_procs;
      Alcotest.test_case "attribution: full shrinks overhead" `Quick
        test_attr_full_shrinks_overhead;
      Alcotest.test_case "probe sums match cpu stats" `Quick test_probe_sums;
      Alcotest.test_case "report round-trip" `Quick test_report_roundtrip;
      Alcotest.test_case "report rejects future schema" `Quick
        test_report_rejects_future_schema;
      Alcotest.test_case "report accepts v1 documents" `Quick
        test_report_accepts_v1;
      Alcotest.test_case "report accepts v2 documents" `Quick
        test_report_accepts_v2;
      Alcotest.test_case "suite --json round-trip" `Quick
        test_suite_json_roundtrip ] )
