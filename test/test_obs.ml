(* The observability layer: JSON round-trips, span tracing, cycle
   attribution, and the versioned suite-report schema. *)

let json = Alcotest.testable (Fmt.of_to_string Obs.Json.to_string) ( = )

(* --- Json --- *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.Obj
      [ ("null", Obs.Json.Null);
        ("yes", Obs.Json.Bool true);
        ("n", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 3.25);
        ("big", Obs.Json.Float 1.5e300);
        ("s", Obs.Json.String "a \"quoted\"\nline\twith \\ and \x01 ctrl");
        ("empty_list", Obs.Json.List []);
        ("empty_obj", Obs.Json.Obj []);
        ( "nested",
          Obs.Json.List
            [ Obs.Json.Int 1;
              Obs.Json.Obj [ ("k", Obs.Json.List [ Obs.Json.Bool false ]) ] ]
        ) ]
  in
  List.iter
    (fun minify ->
      match Obs.Json.parse (Obs.Json.to_string ~minify doc) with
      | Ok parsed -> Alcotest.check json "round-trips" doc parsed
      | Error m -> Alcotest.failf "parse failed: %s" m)
    [ true; false ]

let test_json_parse () =
  let ok s v =
    match Obs.Json.parse s with
    | Ok p -> Alcotest.check json s v p
    | Error m -> Alcotest.failf "%s: %s" s m
  in
  ok "[1, 2.5, -3]"
    (Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Int (-3) ]);
  ok {|"Aé☃"|} (Obs.Json.String "A\xc3\xa9\xe2\x98\x83");
  ok {|"😀"|} (Obs.Json.String "\xf0\x9f\x98\x80");
  ok "1e3" (Obs.Json.Float 1000.);
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "1 2"; "nul" ]

(* --- Trace --- *)

let test_trace_disabled () =
  Alcotest.(check bool) "no ambient collector" false (Obs.Trace.active ());
  Alcotest.(check int) "span is transparent" 7
    (Obs.Trace.span "x" (fun () -> 7))

let test_trace_spans () =
  let c, v =
    Obs.Trace.with_collector (fun () ->
        Obs.Trace.span "outer" (fun () ->
            Obs.Trace.span
              ~counters:(fun () -> [ ("k", 3); ("zero", 0) ])
              "inner"
              (fun () -> 1 + 1)))
  in
  Alcotest.(check int) "value" 2 v;
  Alcotest.(check bool) "collector uninstalled after" false
    (Obs.Trace.active ());
  let spans = Obs.Trace.spans c in
  Alcotest.(check (list string)) "names in start order" [ "outer"; "inner" ]
    (List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.name) spans);
  Alcotest.(check (list int)) "depths" [ 0; 1 ]
    (List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.depth) spans);
  let inner = List.nth spans 1 in
  Alcotest.(check (list (pair string int))) "counters" [ ("k", 3); ("zero", 0) ]
    inner.Obs.Trace.counters

let test_trace_chrome_json () =
  (* trace a real OM link, export, and re-parse the trace-event JSON *)
  let unit =
    Testutil.compile
      {|
func main() { io_put_labeled("x", 41 + 1); return 0; }
|}
  in
  let c, _ = Obs.Trace.with_collector (fun () -> Testutil.om_link [ unit ]) in
  Alcotest.(check bool) "recorded pipeline spans" true
    (List.length (Obs.Trace.spans c) >= 5);
  let text = Obs.Json.to_string (Obs.Trace.to_chrome_json c) in
  match Obs.Json.parse text with
  | Error m -> Alcotest.failf "chrome trace does not re-parse: %s" m
  | Ok (Obs.Json.List events) ->
      Alcotest.(check bool) "has events" true (List.length events >= 5);
      List.iter
        (fun ev ->
          let str name =
            Option.bind (Obs.Json.member name ev) Obs.Json.get_string
          in
          let num name =
            Option.bind (Obs.Json.member name ev) Obs.Json.get_float
          in
          Alcotest.(check (option string)) "ph" (Some "X") (str "ph");
          Alcotest.(check bool) "has name" true (str "name" <> None);
          Alcotest.(check bool) "ts >= 0" true
            (match num "ts" with Some t -> t >= 0. | None -> false);
          Alcotest.(check bool) "dur >= 0" true
            (match num "dur" with Some d -> d >= 0. | None -> false))
        events;
      let names =
        List.filter_map
          (fun ev -> Option.bind (Obs.Json.member "name" ev) Obs.Json.get_string)
          events
      in
      List.iter
        (fun expected ->
          Alcotest.(check bool) (expected ^ " span present") true
            (List.mem expected names))
        [ "om:om-full"; "lift"; "transform:full"; "lower"; "verify" ]
  | Ok _ -> Alcotest.fail "chrome trace is not a JSON array"

(* --- Attr --- *)

(* Two procedures with very different dynamic weight: [work] burns the
   cycles walking a global table; [main] only calls it a few times. *)
let two_proc_src =
  {|
var table[512];
var acc = 0;

func work(rounds) {
  var i = 0;
  while (i < rounds) {
    var j = 0;
    while (j < 512) { table[j] = table[j] + i; j = j + 1; }
    acc = acc + table[i & 511];
    i = i + 1;
  }
  return acc;
}

func main() {
  io_put_labeled("acc", work(20));
  return 0;
}
|}

let two_proc_world () =
  match
    Linker.Resolve.run
      [ Testutil.compile two_proc_src ]
      ~archives:[ Runtime.libstd () ]
  with
  | Ok w -> w
  | Error m -> Alcotest.failf "resolve failed: %s" m

let profile image =
  match Obs.Attr.run image with
  | Ok p -> p
  | Error e -> Alcotest.failf "profile fault: %a" Machine.Cpu.pp_error e

let test_attr_two_procs () =
  let world = two_proc_world () in
  let std =
    match Linker.Link.link_resolved world with
    | Ok i -> i
    | Error m -> Alcotest.failf "std link: %s" m
  in
  let p = profile std in
  (* counts land on the right proc_info *)
  let work =
    match Obs.Attr.proc p "work" with
    | Some w -> w
    | None -> Alcotest.fail "no profile for work"
  in
  let main =
    match Obs.Attr.proc p "main" with
    | Some m -> m
    | None -> Alcotest.fail "no profile for main"
  in
  Alcotest.(check bool) "work dominates main" true
    (work.Obs.Attr.p_cycles > 10 * main.Obs.Attr.p_cycles);
  Alcotest.(check bool) "every pc mapped to a procedure" true
    (Obs.Attr.proc p "?" = None);
  (* per-procedure tallies are a partition of the run *)
  let sum f = List.fold_left (fun acc q -> acc + f q) 0 p.Obs.Attr.procs in
  Alcotest.(check int) "insns partition"
    p.Obs.Attr.cpu.Machine.Cpu.insns
    (sum (fun q -> q.Obs.Attr.p_insns));
  Alcotest.(check int) "insns total"
    p.Obs.Attr.cpu.Machine.Cpu.insns p.Obs.Attr.totals.Obs.Attr.p_insns;
  Alcotest.(check int) "cycles partition"
    p.Obs.Attr.cpu.Machine.Cpu.cycles
    (sum (fun q -> q.Obs.Attr.p_cycles));
  Alcotest.(check int) "cycles total"
    p.Obs.Attr.cpu.Machine.Cpu.cycles p.Obs.Attr.totals.Obs.Attr.p_cycles;
  Alcotest.(check int) "icache misses total"
    p.Obs.Attr.cpu.Machine.Cpu.icache_misses p.Obs.Attr.totals.Obs.Attr.p_imiss;
  Alcotest.(check int) "dcache misses total"
    p.Obs.Attr.cpu.Machine.Cpu.dcache_misses p.Obs.Attr.totals.Obs.Attr.p_dmiss;
  (* category buckets partition each procedure *)
  List.iter
    (fun q ->
      let cat_insns =
        List.fold_left
          (fun acc c -> acc + (Obs.Attr.bucket q c).Obs.Attr.b_insns)
          0 Obs.Attr.all_categories
      in
      Alcotest.(check int)
        (q.Obs.Attr.pname ^ " buckets partition its insns")
        q.Obs.Attr.p_insns cat_insns)
    p.Obs.Attr.procs;
  (* the standard link of a global-heavy loop pays real GAT overhead *)
  Alcotest.(check bool) "std has address loads" true
    ((Obs.Attr.bucket work Obs.Attr.Addr_load).Obs.Attr.b_insns > 0);
  Alcotest.(check bool) "std has gp setups" true
    ((Obs.Attr.bucket p.Obs.Attr.totals Obs.Attr.Gp_setup).Obs.Attr.b_insns > 0)

let test_attr_full_shrinks_overhead () =
  let world = two_proc_world () in
  let std =
    match Linker.Link.link_resolved world with
    | Ok i -> i
    | Error m -> Alcotest.failf "std link: %s" m
  in
  let full =
    match Om.optimize_resolved Om.Full world with
    | Ok { Om.image; _ } -> image
    | Error m -> Alcotest.failf "om-full: %s" m
  in
  let p0 = profile std in
  let p1 = profile full in
  Alcotest.(check string) "outputs agree" p0.Obs.Attr.output p1.Obs.Attr.output;
  let overhead p =
    List.fold_left
      (fun acc c -> acc + (Obs.Attr.bucket p.Obs.Attr.totals c).Obs.Attr.b_cycles)
      0
      [ Obs.Attr.Addr_load; Obs.Attr.Gp_setup; Obs.Attr.Pv_load ]
  in
  Alcotest.(check bool) "om-full shrinks address-calculation cycles" true
    (overhead p1 < overhead p0)

(* --- probe consistency (the machine-level contract Attr relies on) --- *)

let test_probe_sums () =
  let image = Testutil.link_std [ Testutil.compile two_proc_src ] in
  let cycles = ref 0 in
  let insns = ref 0 in
  let imiss = ref 0 in
  let dmiss = ref 0 in
  let o =
    match
      Machine.Cpu.run
        ~probe:(fun ev ->
          incr insns;
          cycles := !cycles + ev.Machine.Cpu.ev_cycles;
          if ev.Machine.Cpu.ev_icache_miss then incr imiss;
          if ev.Machine.Cpu.ev_dcache_miss then incr dmiss)
        image
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e
  in
  Alcotest.(check int) "probe insns" o.Machine.Cpu.stats.Machine.Cpu.insns !insns;
  Alcotest.(check int) "probe cycles sum to stats.cycles"
    o.Machine.Cpu.stats.Machine.Cpu.cycles !cycles;
  Alcotest.(check int) "probe icache misses"
    o.Machine.Cpu.stats.Machine.Cpu.icache_misses !imiss;
  Alcotest.(check int) "probe dcache misses"
    o.Machine.Cpu.stats.Machine.Cpu.dcache_misses !dmiss

(* --- Report --- *)

let sample_report () =
  Obs.Report.make ~tool:"test"
    [ { Obs.Report.bench = "two_proc";
        build = "compile-each";
        std_cycles = 123456;
        std_insns = 789;
        std_attribution =
          Some
            [ ("addr_load", { Obs.Report.insns = 10; cycles = 31 });
              ("other", { Obs.Report.insns = 700; cycles = 900 }) ];
        std_fault = None;
        outputs_agree = true;
        runs =
          [ { Obs.Report.level = "om-full";
              cycles = 100000;
              insns = 700;
              improvement_pct = 19.0;
              counters = [ ("addr_loads", 14); ("gp_setups_deleted", 6) ];
              attribution = None;
              fault = None;
              host = Some { Obs.Report.wall_s = 0.25; mips = 12.5 };
              size =
                Some
                  { Obs.Report.text_bytes = 2800;
                    data_bytes = 512;
                    gat_bytes = 64 } };
            { Obs.Report.level = "om-full+sched";
              cycles = 0;
              insns = 0;
              improvement_pct = 0.;
              counters = [];
              attribution = None;
              fault = Some "heap exhausted";
              host = None;
              size = None } ];
        std_host = Some { Obs.Report.wall_s = 0.5; mips = 10.0 };
        relink = Some { Obs.Report.cold_s = 0.2; warm_s = 0.05 };
        std_size =
          Some
            { Obs.Report.text_bytes = 3156; data_bytes = 640; gat_bytes = 320 }
      } ]

let test_report_roundtrip () =
  let r = sample_report () in
  let path = Filename.temp_file "obs_report" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Report.write path r;
  match Obs.Report.read path with
  | Error m -> Alcotest.failf "read failed: %s" m
  | Ok r' ->
      Alcotest.check json "report round-trips" (Obs.Report.to_json r)
        (Obs.Report.to_json r')

let test_report_rejects_future_schema () =
  match
    Obs.Report.of_json
      (Obs.Json.Obj
         [ ("schema_version", Obs.Json.Int (Obs.Report.schema_version + 1));
           ("tool", Obs.Json.String "t");
           ("results", Obs.Json.List []) ])
  with
  | Ok _ -> Alcotest.fail "accepted an unknown schema version"
  | Error m ->
      Alcotest.(check bool) "error names the version" true
        (Astring.String.is_infix ~affix:"schema_version" m)

let test_report_accepts_v1 () =
  (* a v1 document predates the host-throughput fields: it must still
     parse, with [host]/[std_host] surfaced as [None] *)
  match
    Obs.Report.of_json
      (Obs.Json.Obj
         [ ("schema_version", Obs.Json.Int 1);
           ("tool", Obs.Json.String "t");
           ( "results",
             Obs.Json.List
               [ Obs.Json.Obj
                   [ ("bench", Obs.Json.String "b");
                     ("build", Obs.Json.String "compile-each");
                     ("std_cycles", Obs.Json.Int 10);
                     ("std_insns", Obs.Json.Int 5);
                     ("std_attribution", Obs.Json.Null);
                     ("std_fault", Obs.Json.Null);
                     ("outputs_agree", Obs.Json.Bool true);
                     ( "runs",
                       Obs.Json.List
                         [ Obs.Json.Obj
                             [ ("level", Obs.Json.String "om-full");
                               ("cycles", Obs.Json.Int 7);
                               ("insns", Obs.Json.Int 3);
                               ("improvement_pct", Obs.Json.Float 30.0);
                               ("counters", Obs.Json.Obj []);
                               ("attribution", Obs.Json.Null);
                               ("fault", Obs.Json.Null) ] ] ) ] ] ) ])
  with
  | Error m -> Alcotest.failf "v1 document rejected: %s" m
  | Ok r ->
      let b = List.hd r.Obs.Report.results in
      Alcotest.(check bool) "std_host is None" true
        (b.Obs.Report.std_host = None);
      Alcotest.(check bool) "run host is None" true
        ((List.hd b.Obs.Report.runs).Obs.Report.host = None)

let test_report_accepts_v2 () =
  (* a v2 document predates the link-service timings: it must still
     parse, with [relink] surfaced as [None] *)
  match
    Obs.Report.of_json
      (Obs.Json.Obj
         [ ("schema_version", Obs.Json.Int 2);
           ("tool", Obs.Json.String "t");
           ( "results",
             Obs.Json.List
               [ Obs.Json.Obj
                   [ ("bench", Obs.Json.String "b");
                     ("build", Obs.Json.String "compile-each");
                     ("std_cycles", Obs.Json.Int 10);
                     ("std_insns", Obs.Json.Int 5);
                     ("std_attribution", Obs.Json.Null);
                     ("std_fault", Obs.Json.Null);
                     ("outputs_agree", Obs.Json.Bool true);
                     ( "std_host",
                       Obs.Json.Obj
                         [ ("wall_s", Obs.Json.Float 0.5);
                           ("mips", Obs.Json.Float 10.0) ] );
                     ("runs", Obs.Json.List []) ] ] ) ])
  with
  | Error m -> Alcotest.failf "v2 document rejected: %s" m
  | Ok r ->
      let b = List.hd r.Obs.Report.results in
      Alcotest.(check bool) "relink is None" true (b.Obs.Report.relink = None);
      Alcotest.(check bool) "std_host survives" true
        (b.Obs.Report.std_host <> None)

let test_suite_json_roundtrip () =
  (* the exact path behind [omlink suite --json]: measure, convert, print,
     re-read through the schema reader *)
  let b =
    match Workloads.Programs.find "compress" with
    | Some b -> b
    | None -> Alcotest.fail "compress benchmark missing"
  in
  let r =
    match Reports.Measure.run_benchmark Workloads.Suite.Compile_each b with
    | Ok r -> r
    | Error m -> Alcotest.failf "measure failed: %s" m
  in
  let report = Reports.Report_json.of_matrix ~attribution:true [ r ] in
  let text = Obs.Json.to_string (Obs.Report.to_json report) in
  match Result.bind (Obs.Json.parse text) Obs.Report.of_json with
  | Error m -> Alcotest.failf "round-trip failed: %s" m
  | Ok report' -> (
      Alcotest.check json "suite report round-trips"
        (Obs.Report.to_json report)
        (Obs.Report.to_json report');
      let bench = List.hd report'.Obs.Report.results in
      Alcotest.(check string) "bench name" "compress" bench.Obs.Report.bench;
      Alcotest.(check int) "level rows" (List.length Om.all_levels)
        (List.length bench.Obs.Report.runs);
      match bench.Obs.Report.std_attribution with
      | None -> Alcotest.fail "attribution missing"
      | Some buckets ->
          Alcotest.(check bool) "every category present" true
            (List.for_all
               (fun c -> List.mem_assoc (Obs.Attr.category_name c) buckets)
               Obs.Attr.all_categories))

(* --- Json escaping (control chars, unicode) --- *)

let test_json_escaping () =
  let printed = Obs.Json.to_string (Obs.Json.String "\x01\x1f\t\n\"\\") in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (affix ^ " escaped") true
        (Astring.String.is_infix ~affix printed))
    [ {|\u0001|}; {|\u001f|}; {|\t|}; {|\n|}; {|\"|}; {|\\|} ];
  (* no raw control byte survives into the output *)
  String.iter
    (fun c ->
      Alcotest.(check bool) "printed text has no control bytes" true
        (Char.code c >= 0x20))
    printed;
  (* \uXXXX escapes decode to UTF-8, surrogate pairs included *)
  (match Obs.Json.parse {|"é ☃"|} with
  | Ok v ->
      Alcotest.check json "BMP escapes" (Obs.Json.String "\xc3\xa9 \xe2\x98\x83") v
  | Error m -> Alcotest.failf "BMP escapes: %s" m);
  (match Obs.Json.parse {|"😀"|} with
  | Ok v ->
      Alcotest.check json "surrogate pair" (Obs.Json.String "\xf0\x9f\x98\x80") v
  | Error m -> Alcotest.failf "surrogate pair: %s" m);
  (* escaping round-trips byte-for-byte *)
  let tricky = "mixed \x00\x1b bytes, caf\xc3\xa9, \xf0\x9f\x98\x80, \"q\"" in
  match Obs.Json.parse (Obs.Json.to_string (Obs.Json.String tricky)) with
  | Ok (Obs.Json.String s) -> Alcotest.(check string) "round-trip" tricky s
  | Ok _ -> Alcotest.fail "parsed to a non-string"
  | Error m -> Alcotest.failf "round-trip: %s" m

(* --- Metrics --- *)

let test_metrics_buckets () =
  (* below sub (256) every integer is its own bucket: exact *)
  for v = 0 to 255 do
    Alcotest.(check int)
      (Printf.sprintf "exact bucket for %d" v)
      v
      (Obs.Metrics.bucket_lower (Obs.Metrics.bucket_index v))
  done;
  (* above: lower bound <= v with relative error bounded by 1/128 *)
  List.iter
    (fun v ->
      let lo = Obs.Metrics.bucket_lower (Obs.Metrics.bucket_index v) in
      Alcotest.(check bool) (Printf.sprintf "lower bound <= %d" v) true (lo <= v);
      Alcotest.(check bool)
        (Printf.sprintf "error bounded for %d" v)
        true
        (v - lo <= v / 128))
    [ 256; 257; 511; 512; 1000; 4096; 65535; 1_000_000; 123_456_789; max_int ];
  (* the index is monotone across bucket boundaries *)
  let prev = ref (-1) in
  for v = 0 to 100_000 do
    let i = Obs.Metrics.bucket_index v in
    Alcotest.(check bool) "monotone" true (i >= !prev);
    prev := i
  done

let test_metrics_quantiles_exact () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~registry:reg "h_us" in
  (* a scripted sequence of small values: every bucket is width-1, so
     every quantile is the true sample value *)
  List.iter (Obs.Metrics.observe h) (List.init 100 (fun i -> i + 1));
  let s = Obs.Metrics.summary h in
  Alcotest.(check int) "count" 100 s.Obs.Metrics.count;
  Alcotest.(check int) "sum" 5050 s.Obs.Metrics.sum;
  Alcotest.(check int) "min" 1 s.Obs.Metrics.min;
  Alcotest.(check int) "max" 100 s.Obs.Metrics.max;
  Alcotest.(check int) "p50 exact" 50 s.Obs.Metrics.p50;
  Alcotest.(check int) "p95 exact" 95 s.Obs.Metrics.p95;
  Alcotest.(check int) "p99 exact" 99 s.Obs.Metrics.p99;
  (* max is exact even when it lands in a wide bucket *)
  Obs.Metrics.observe h 1_000_001;
  Alcotest.(check int) "wide-bucket max exact" 1_000_001
    (Obs.Metrics.summary h).Obs.Metrics.max;
  (* re-registration returns the same histogram *)
  let h' = Obs.Metrics.histogram ~registry:reg "h_us" in
  Alcotest.(check int) "shared instrument" 101
    (Obs.Metrics.summary h').Obs.Metrics.count;
  Alcotest.(check bool) "find_histogram finds it" true
    (Obs.Metrics.find_histogram ~registry:reg "h_us" <> None);
  Alcotest.(check bool) "find_histogram misses unknown names" true
    (Obs.Metrics.find_histogram ~registry:reg "nope" = None)

let test_metrics_exposition () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:reg ~labels:[ ("kind", "x") ] "c_total" in
  Obs.Metrics.incr ~by:3 c;
  let g = Obs.Metrics.gauge ~registry:reg "g" in
  Obs.Metrics.set_gauge g 2.5;
  let h = Obs.Metrics.histogram ~registry:reg "h_us" in
  List.iter (Obs.Metrics.observe h) [ 5; 10; 10; 20 ];
  let text = Obs.Metrics.to_prometheus reg in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (affix ^ " in exposition") true
        (Astring.String.is_infix ~affix text))
    [ {|c_total{kind="x"} 3|};
      "g 2.5";
      {|h_us_bucket{le="5"} 1|};
      {|h_us_bucket{le="10"} 3|};
      {|h_us_bucket{le="20"} 4|};
      {|h_us_bucket{le="+Inf"} 4|};
      "h_us_sum 45";
      "h_us_count 4";
      {|h_us{quantile="0.5"} 10|};
      "# TYPE c_total counter";
      "# TYPE h_us histogram" ];
  (* the JSON snapshot survives the printer/parser round-trip *)
  let snapshot = Obs.Metrics.to_json reg in
  (match Obs.Json.parse (Obs.Json.to_string snapshot) with
  | Ok j' -> Alcotest.check json "snapshot round-trips" snapshot j'
  | Error m -> Alcotest.failf "snapshot parse: %s" m);
  (* and carries the histogram payload *)
  match Obs.Json.member "histograms" snapshot with
  | Some (Obs.Json.List [ hj ]) ->
      let get name = Option.bind (Obs.Json.member name hj) Obs.Json.get_int in
      Alcotest.(check (option int)) "count" (Some 4) (get "count");
      Alcotest.(check (option int)) "p50" (Some 10) (get "p50");
      Alcotest.(check (option int)) "max" (Some 20) (get "max")
  | _ -> Alcotest.fail "snapshot carries no histogram list"

let test_metrics_multidomain () =
  (* hammer one histogram and one counter from several domains: no
     observation may be lost *)
  let reg = Obs.Metrics.create () in
  let per_domain = 10_000 and domains = 4 in
  let worker () =
    (* each domain mints its own handles, exercising get-or-create *)
    let h = Obs.Metrics.histogram ~registry:reg "mt_us" in
    let c = Obs.Metrics.counter ~registry:reg "mt_total" in
    for i = 1 to per_domain do
      Obs.Metrics.observe h (i mod 200);
      Obs.Metrics.incr c
    done
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  let h = Obs.Metrics.histogram ~registry:reg "mt_us" in
  let c = Obs.Metrics.counter ~registry:reg "mt_total" in
  Alcotest.(check int) "no lost observations" (domains * per_domain)
    (Obs.Metrics.summary h).Obs.Metrics.count;
  Alcotest.(check int) "no lost increments" (domains * per_domain)
    (Obs.Metrics.counter_value c)

(* --- Trace across domains --- *)

let test_trace_multidomain () =
  let n = 16 in
  let c, results =
    Obs.Trace.with_collector (fun () ->
        Reports.Pool.map ~jobs:4
          (fun i -> Obs.Trace.span (Printf.sprintf "task%d" i) (fun () -> i * 2))
          (List.init n Fun.id))
  in
  Alcotest.(check (list int)) "results in order"
    (List.init n (fun i -> i * 2))
    results;
  let spans = Obs.Trace.spans c in
  let task_spans =
    List.filter
      (fun (s : Obs.Trace.span) ->
        String.length s.Obs.Trace.name >= 4
        && String.sub s.Obs.Trace.name 0 4 = "task")
      spans
  in
  Alcotest.(check int) "no span lost across domains" n
    (List.length task_spans);
  Alcotest.(check (list string)) "every task span present, exactly once"
    (List.sort compare (List.init n (Printf.sprintf "task%d")))
    (List.sort compare
       (List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.name) task_spans));
  (* worker spans carry their own depth-0 nesting *)
  List.iter
    (fun (s : Obs.Trace.span) ->
      Alcotest.(check int) "worker span depth" 0 s.Obs.Trace.depth)
    task_spans

(* --- Report v3/v6 side by side --- *)

let v3_doc () =
  Obs.Json.Obj
    [ ("schema_version", Obs.Json.Int 3);
      ("tool", Obs.Json.String "t");
      ( "results",
        Obs.Json.List
          [ Obs.Json.Obj
              [ ("bench", Obs.Json.String "b");
                ("build", Obs.Json.String "compile-each");
                ("std_cycles", Obs.Json.Int 10);
                ("std_insns", Obs.Json.Int 5);
                ("std_attribution", Obs.Json.Null);
                ("std_fault", Obs.Json.Null);
                ("outputs_agree", Obs.Json.Bool true);
                ("runs", Obs.Json.List []);
                ("std_host", Obs.Json.Null);
                ( "relink",
                  Obs.Json.Obj
                    [ ("cold_s", Obs.Json.Float 0.2);
                      ("warm_s", Obs.Json.Float 0.05) ] ) ] ] ) ]

let test_report_accepts_v3_and_v6 () =
  (* v3: no latency/metrics/load fields — they surface as None *)
  (match Obs.Report.of_json (v3_doc ()) with
  | Error m -> Alcotest.failf "v3 document rejected: %s" m
  | Ok r ->
      Alcotest.(check bool) "v3 latency is None" true (r.Obs.Report.latency = None);
      Alcotest.(check bool) "v3 metrics is None" true (r.Obs.Report.metrics = None);
      Alcotest.(check bool) "v3 load is None" true (r.Obs.Report.load = None);
      Alcotest.(check bool) "v3 relink survives" true
        ((List.hd r.Obs.Report.results).Obs.Report.relink <> None));
  (* v6: fresh reports carry quantiles, a metrics snapshot, and the
     load-test record *)
  Alcotest.(check int) "make stamps v6" 6 Obs.Report.schema_version;
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~registry:reg "lat_us" in
  List.iter (Obs.Metrics.observe h) [ 10; 20; 30 ];
  let load =
    { Obs.Report.l_profile = "mixed";
      l_level = "full";
      l_clients = 4;
      l_workers = 2;
      l_requests = 100;
      l_ok = 100;
      l_failed = 0;
      l_overloaded = 0;
      l_timeouts = 0;
      l_coalesced = 37;
      l_mismatched = 0;
      l_wall_s = 1.5;
      l_throughput_rps = 66.7;
      l_latency =
        { Obs.Report.q_count = 100; q_p50_us = 900; q_p95_us = 4000;
          q_p99_us = 9000; q_max_us = 12000 } }
  in
  let r4 =
    Obs.Report.make ~tool:"test"
      ~latency:
        { Obs.Report.q_count = 3; q_p50_us = 20; q_p95_us = 30; q_p99_us = 30;
          q_max_us = 30 }
      ~metrics:(Obs.Metrics.to_json reg) ~load []
  in
  let path = Filename.temp_file "obs_report_v6" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Report.write path r4;
  match Obs.Report.read path with
  | Error m -> Alcotest.failf "v6 read failed: %s" m
  | Ok r' -> (
      Alcotest.(check int) "version" 6 r'.Obs.Report.version;
      (match r'.Obs.Report.latency with
      | Some q ->
          Alcotest.(check int) "q_count" 3 q.Obs.Report.q_count;
          Alcotest.(check int) "q_p50" 20 q.Obs.Report.q_p50_us;
          Alcotest.(check int) "q_max" 30 q.Obs.Report.q_max_us
      | None -> Alcotest.fail "latency lost");
      (match r'.Obs.Report.load with
      | Some l ->
          Alcotest.(check string) "load profile" "mixed" l.Obs.Report.l_profile;
          Alcotest.(check int) "load ok" 100 l.Obs.Report.l_ok;
          Alcotest.(check int) "load coalesced" 37 l.Obs.Report.l_coalesced;
          Alcotest.(check int) "load p99" 9000
            l.Obs.Report.l_latency.Obs.Report.q_p99_us
      | None -> Alcotest.fail "load lost");
      match r'.Obs.Report.metrics with
      | Some m ->
          Alcotest.(check bool) "metrics snapshot survives" true
            (Obs.Json.member "histograms" m <> None)
      | None -> Alcotest.fail "metrics lost")

(* --- Compare: the regression gate --- *)

let report_with ?(gat_bytes = 64) ~cycles ~improvement ~mips () =
  Obs.Report.make ~tool:"test"
    [ { Obs.Report.bench = "b";
        build = "compile-each";
        std_cycles = 1000;
        std_insns = 100;
        std_attribution = None;
        std_fault = None;
        outputs_agree = true;
        runs =
          [ { Obs.Report.level = "om-full";
              cycles;
              insns = 90;
              improvement_pct = improvement;
              counters = [];
              attribution = None;
              fault = None;
              host = Some { Obs.Report.wall_s = 0.1; mips };
              size =
                Some
                  { Obs.Report.text_bytes = 360;
                    data_bytes = 128;
                    gat_bytes } } ];
        std_host = Some { Obs.Report.wall_s = 0.1; mips = 100. };
        relink = None;
        std_size =
          Some
            { Obs.Report.text_bytes = 400; data_bytes = 160; gat_bytes = 320 }
      } ]

let test_compare_gate () =
  let base = report_with ~cycles:800 ~improvement:20.0 ~mips:100. () in
  (* identical reports: clean pass *)
  let same = Obs.Compare.compare ~old_r:base ~new_r:base () in
  Alcotest.(check bool) "identical reports pass" true (Obs.Compare.ok same);
  Alcotest.(check int) "no regressions" 0
    (List.length same.Obs.Compare.regressions);
  (* cycles +5% and improvement -4 points: both gate *)
  let regressed = report_with ~cycles:840 ~improvement:16.0 ~mips:100. () in
  let out = Obs.Compare.compare ~old_r:base ~new_r:regressed () in
  Alcotest.(check bool) "regression fails the gate" false (Obs.Compare.ok out);
  let metrics =
    List.map (fun f -> f.Obs.Compare.metric) out.Obs.Compare.regressions
  in
  Alcotest.(check bool) "cycles gated" true (List.mem "cycles" metrics);
  Alcotest.(check bool) "improvement gated" true
    (List.mem "improvement_pct" metrics);
  (* a big MIPS drop is a warning by default, a regression when gated *)
  let slower = report_with ~cycles:800 ~improvement:20.0 ~mips:50. () in
  let warned = Obs.Compare.compare ~old_r:base ~new_r:slower () in
  Alcotest.(check bool) "mips drop alone passes by default" true
    (Obs.Compare.ok warned);
  Alcotest.(check bool) "but is surfaced as a warning" true
    (List.exists
       (fun f -> f.Obs.Compare.metric = "mips")
       warned.Obs.Compare.warnings);
  let gated =
    Obs.Compare.compare
      ~thresholds:
        { Obs.Compare.default_thresholds with
          Obs.Compare.max_mips_drop_pct = Some 20. }
      ~old_r:base ~new_r:slower ()
  in
  Alcotest.(check bool) "gated mips drop fails" false (Obs.Compare.ok gated);
  (* faster cycles surface as improvements, not regressions *)
  let faster = report_with ~cycles:700 ~improvement:30.0 ~mips:100. () in
  let better = Obs.Compare.compare ~old_r:base ~new_r:faster () in
  Alcotest.(check bool) "improvement passes" true (Obs.Compare.ok better);
  Alcotest.(check bool) "improvements recorded" true
    (better.Obs.Compare.improvements <> []);
  (* a vanished bench row is reported missing *)
  let empty = Obs.Report.make ~tool:"test" [] in
  let gone = Obs.Compare.compare ~old_r:base ~new_r:empty () in
  Alcotest.(check (list string)) "missing rows listed" [ "b/compile-each" ]
    gone.Obs.Compare.missing

let suite =
  ( "obs",
    [ Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "json parse" `Quick test_json_parse;
      Alcotest.test_case "trace disabled by default" `Quick test_trace_disabled;
      Alcotest.test_case "trace spans" `Quick test_trace_spans;
      Alcotest.test_case "trace chrome json" `Quick test_trace_chrome_json;
      Alcotest.test_case "attribution: two procedures" `Quick
        test_attr_two_procs;
      Alcotest.test_case "attribution: full shrinks overhead" `Quick
        test_attr_full_shrinks_overhead;
      Alcotest.test_case "probe sums match cpu stats" `Quick test_probe_sums;
      Alcotest.test_case "report round-trip" `Quick test_report_roundtrip;
      Alcotest.test_case "report rejects future schema" `Quick
        test_report_rejects_future_schema;
      Alcotest.test_case "report accepts v1 documents" `Quick
        test_report_accepts_v1;
      Alcotest.test_case "report accepts v2 documents" `Quick
        test_report_accepts_v2;
      Alcotest.test_case "suite --json round-trip" `Quick
        test_suite_json_roundtrip;
      Alcotest.test_case "json escaping" `Quick test_json_escaping;
      Alcotest.test_case "metrics bucket layout" `Quick test_metrics_buckets;
      Alcotest.test_case "metrics exact quantiles" `Quick
        test_metrics_quantiles_exact;
      Alcotest.test_case "metrics exposition" `Quick test_metrics_exposition;
      Alcotest.test_case "metrics across domains" `Quick
        test_metrics_multidomain;
      Alcotest.test_case "trace across domains" `Quick test_trace_multidomain;
      Alcotest.test_case "report accepts v3 and v6" `Quick
        test_report_accepts_v3_and_v6;
      Alcotest.test_case "compare regression gate" `Quick test_compare_gate ] )
