module S = Om.Symbolic
module I = Isa.Insn
module R = Isa.Reg

let world_of ?(extra = []) src =
  let units = Testutil.compile src :: extra in
  match Linker.Resolve.run units ~archives:[ Runtime.libstd () ] with
  | Ok w -> w
  | Error m -> Alcotest.failf "resolve: %s" m

let lift world =
  match Om.Lift.run world with
  | Ok p -> p
  | Error m -> Alcotest.failf "lift: %s" m

let om_level level world =
  match Om.optimize_resolved level world with
  | Ok r -> r
  | Error m -> Alcotest.failf "%s: %s" (Om.level_name level) m

let find_proc (p : S.program) name =
  match
    Array.to_seq p.S.procs
    |> Seq.find (fun (pr : S.proc) -> String.equal pr.sp_name name)
  with
  | Some pr -> pr
  | None -> Alcotest.failf "no procedure %s in symbolic program" name

(* --- lift --- *)

let test_lift_classifies () =
  let world =
    world_of {|var g = 1;
               func main() { g = g + 2; io_putint(g); return 0; }|}
  in
  let program = lift world in
  let main = find_proc program "main" in
  let count pred = List.length (List.filter pred main.S.body) in
  Alcotest.(check bool) "has address loads" true
    (count (fun n -> match n.S.insn with S.Gatload _ -> true | _ -> false) > 0);
  Alcotest.(check bool) "has lituse links" true
    (count (fun n -> match n.S.insn with S.Use _ -> true | _ -> false) > 0);
  Alcotest.(check bool) "has gp setup" true
    (count (fun n -> match n.S.insn with S.Gpsetup_hi _ -> true | _ -> false) > 0);
  (* instruction count matches the object code *)
  let u = world.Linker.Resolve.modules.(0) in
  let p = Option.get (Objfile.Cunit.find_symbol u "main") in
  let size =
    match p.Objfile.Symbol.def with
    | Objfile.Symbol.Proc { size; _ } -> size
    | _ -> 0
  in
  Alcotest.(check int) "node count = insn count" (size / 4)
    (List.length main.S.body)

let test_noopt_behavior_preserved () =
  (* lift + lower with no transformation behaves like the standard link *)
  let src = {|
var xs[50];
static func fill(n) {
  var i = 0;
  while (i < n) { xs[i] = i * i % 97; i = i + 1; }
  return 0;
}
func main() {
  fill(50);
  sort_quads(&xs, 50);
  io_putint(xs[0]); io_putchar(32); io_putint(xs[49]);
  return 0;
}
|} in
  ignore (Testutil.run_all_levels src)

(* --- analysis --- *)

let test_callsite_discovery () =
  let world =
    world_of
      {|func leaf(x) { return x + 1; }
        var fp = 0;
        func main() {
          fp = &leaf;
          io_putint(leaf(1) + fp(2));
          return 0; }|}
  in
  let program = lift world in
  let als = Om.Analysis.run program in
  let in_main =
    List.filter
      (fun (cs : Om.Analysis.callsite) ->
        program.S.procs.(cs.cs_proc).S.sp_name = "main")
      als.Om.Analysis.callsites
  in
  let direct =
    List.exists
      (fun (cs : Om.Analysis.callsite) ->
        match cs.cs_kind with
        | Om.Analysis.Direct { callee; _ } ->
            world.Linker.Resolve.procs.(callee).p_name = "leaf"
        | _ -> false)
      in_main
  in
  let indirect =
    List.exists
      (fun (cs : Om.Analysis.callsite) -> cs.cs_kind = Om.Analysis.Indirect)
      in_main
  in
  Alcotest.(check bool) "finds the direct call" true direct;
  Alcotest.(check bool) "finds the indirect call" true indirect

let test_address_taken () =
  let world =
    world_of
      {|func plain(x) { return x; }
        func pointed(x) { return x + 1; }
        var fp = 0;
        func main() {
          fp = &pointed;
          io_putint(plain(1) + fp(1));
          return 0; }|}
  in
  let program = lift world in
  let als = Om.Analysis.run program in
  let idx name = Option.get (Linker.Resolve.proc_index_by_name world name) in
  Alcotest.(check bool) "pointed is address-taken" true
    als.Om.Analysis.address_taken.(idx "pointed");
  Alcotest.(check bool) "plain is not" false
    als.Om.Analysis.address_taken.(idx "plain")

(* --- transformations --- *)

let test_move_setups () =
  let world =
    world_of {|var g = 1;
               func main() { io_putint(g); return 0; }|}
  in
  let program = lift world in
  let main = find_proc program "main" in
  (* compile-time scheduling usually displaces the pair *)
  Om.Transform.move_setups_to_entry program;
  Alcotest.(check bool) "setup at entry after motion" true
    (Option.is_some (Om.Transform.setup_at_entry main))

let stats_of level world = (om_level level world).Om.stats

let test_simple_nullifies_not_deletes () =
  let world =
    world_of {|var a = 1; var b = 2;
               func main() { io_putint(a + b); return 0; }|}
  in
  let s = stats_of Om.Simple world in
  Alcotest.(check int) "no deletions in OM-simple" 0 s.Om.Stats.insns_deleted;
  Alcotest.(check bool) "some nullifications" true (s.Om.Stats.nops_added > 0);
  Alcotest.(check int) "static size unchanged" s.Om.Stats.insns_before
    s.Om.Stats.insns_after

let test_full_deletes () =
  let world =
    world_of {|var a = 1; var b = 2;
               func main() { io_putint(a + b); return 0; }|}
  in
  let s = stats_of Om.Full world in
  Alcotest.(check int) "no no-ops in OM-full" 0 s.Om.Stats.nops_added;
  Alcotest.(check bool) "deletions happen" true (s.Om.Stats.insns_deleted > 0);
  Alcotest.(check bool) "program shrinks" true
    (s.Om.Stats.insns_after < s.Om.Stats.insns_before)

let test_full_removes_more_pv_loads () =
  let src = {|
func a(x) { return x + 1; }
func b(x) { return a(x) + 2; }
func c(x) { return b(x) + 3; }
func main() { io_putint(c(1) + b(2) + a(3)); return 0; }
|} in
  let world = world_of src in
  let simple = stats_of Om.Simple world in
  let full = stats_of Om.Full world in
  Alcotest.(check bool) "jsr all but gone under both" true
    (simple.Om.Stats.jsr_after <= simple.Om.Stats.jsr_before
    && full.Om.Stats.jsr_after <= 1);
  Alcotest.(check bool) "full keeps fewer pv loads than simple" true
    (full.Om.Stats.calls_pv_after <= simple.Om.Stats.calls_pv_after);
  Alcotest.(check bool) "full deletes gp setups" true
    (full.Om.Stats.gp_setups_deleted > 0)

let test_indirect_calls_keep_bookkeeping () =
  let src = {|
func target(x) { return x * 2; }
var fp = 0;
func main() {
  fp = &target;
  io_putint(fp(21));
  return 0;
}
|} in
  let world = world_of src in
  let full = stats_of Om.Full world in
  (* the call through fp cannot lose its PV load or its GP reset *)
  Alcotest.(check bool) "pv loads remain" true
    (full.Om.Stats.calls_pv_after >= 1);
  Alcotest.(check bool) "resets remain" true
    (full.Om.Stats.calls_reset_after >= 1)

let test_gat_reduction () =
  let src = {|
var a = 1; var b = 2; var c = 3; var d = 4;
func main() {
  io_putint(a + b + c + d + 0x123456789ABCDEF);
  return 0;
}
|} in
  let world = world_of src in
  let full = stats_of Om.Full world in
  Alcotest.(check bool) "GAT shrinks a lot" true
    (full.Om.Stats.gat_bytes_after * 2 < full.Om.Stats.gat_bytes_before);
  (* the 64-bit literal still needs its pool slot *)
  Alcotest.(check bool) "pool is not empty" true
    (full.Om.Stats.gat_bytes_after >= 8)

let test_far_data_lea_wide () =
  (* data too large for the GP window: OM-full must use ldah/lda pairs
     and the program must still work at every level *)
  let src = {|
var big1[9000];
var big2[9000];
func main() {
  big1[8999] = 7;
  big2[8999] = 35;
  io_putint(big1[8999] + big2[8999]);
  return 0;
}
|} in
  let out = Testutil.run_all_levels src in
  Alcotest.(check string) "far-data program output" "42" out

let test_addr_accounting () =
  let world =
    world_of {|var a = 1;
               func main() { io_putint(a); return 0; }|}
  in
  List.iter
    (fun level ->
      let s = stats_of level world in
      Alcotest.(check bool)
        (Om.level_name level ^ ": converted+nullified <= total")
        true
        (s.Om.Stats.addr_converted + s.Om.Stats.addr_nullified
         <= s.Om.Stats.addr_loads);
      Alcotest.(check bool)
        (Om.level_name level ^ ": pv after <= calls")
        true
        (s.Om.Stats.calls_pv_after <= s.Om.Stats.calls))
    [ Om.Simple; Om.Full ]

let test_full_sched_alignment () =
  (* quadword alignment never breaks behavior; loop targets get aligned *)
  let src = {|
var acc = 0;
func main() {
  var i = 0;
  while (i < 100) { acc = acc + i; i = i + 1; }
  io_putint(acc);
  return 0;
}
|} in
  let world = world_of src in
  let { Om.image; _ } = om_level Om.Full_sched world in
  let out = (Testutil.run_image image).Machine.Cpu.output in
  Alcotest.(check string) "aligned program output" "4950" out

(* --- behavior preservation properties --- *)

(* a tiny generator of random minic programs *)
let gen_program =
  let open QCheck.Gen in
  let var i = Printf.sprintf "g%d" i in
  let* nglobals = int_range 1 4 in
  let* stmts =
    list_size (int_range 1 8)
      (let* v = int_range 0 (nglobals - 1) in
       let* w = int_range 0 (nglobals - 1) in
       let* c = int_range 0 200 in
       oneofl
         [ Printf.sprintf "%s = %s + %d;" (var v) (var w) c;
           Printf.sprintf "%s = %s * 3 - %d;" (var v) (var w) c;
           Printf.sprintf "if (%s > %d) { %s = %s - %d; }" (var v) c (var w)
             (var w) c;
           Printf.sprintf
             "{ var i = 0; while (i < %d) { %s = %s + i; i = i + 1; } }"
             (c mod 17) (var v) (var v) ]
       |> map (fun s ->
              (* minic has no bare blocks: rewrite the loop form *)
              if String.length s > 0 && s.[0] = '{' then
                Printf.sprintf
                  "ctr = 0; while (ctr < %d) { %s = %s + ctr; ctr = ctr + 1; }"
                  (c mod 17) (var v) (var v)
              else s))
  in
  let globals =
    String.concat "\n"
      (List.init nglobals (fun i -> Printf.sprintf "var g%d = %d;" i (i + 1)))
  in
  let body = String.concat "\n  " stmts in
  let prints =
    String.concat " "
      (List.init nglobals (fun i ->
           Printf.sprintf "io_putint(g%d); io_putchar(32);" i))
  in
  return
    (Printf.sprintf
       "%s\nfunc main() {\n  var ctr = 0;\n  %s\n  %s\n  return ctr * 0;\n}"
       globals body prints)

let prop_all_levels_agree =
  QCheck.Test.make ~name:"every OM level preserves program behavior" ~count:30
    (QCheck.make ~print:Fun.id gen_program)
    (fun src ->
      match Testutil.run_all_levels src with
      | _ -> true
      | exception Alcotest.Test_error -> false)

let suite =
  ( "om",
    [ Alcotest.test_case "lift classifies instructions" `Quick
        test_lift_classifies;
      Alcotest.test_case "no-opt preserves behavior" `Quick
        test_noopt_behavior_preserved;
      Alcotest.test_case "call-site discovery" `Quick test_callsite_discovery;
      Alcotest.test_case "address-taken analysis" `Quick test_address_taken;
      Alcotest.test_case "setup motion" `Quick test_move_setups;
      Alcotest.test_case "simple nullifies, never deletes" `Quick
        test_simple_nullifies_not_deletes;
      Alcotest.test_case "full deletes" `Quick test_full_deletes;
      Alcotest.test_case "full beats simple on calls" `Quick
        test_full_removes_more_pv_loads;
      Alcotest.test_case "indirect calls stay conservative" `Quick
        test_indirect_calls_keep_bookkeeping;
      Alcotest.test_case "GAT reduction" `Quick test_gat_reduction;
      Alcotest.test_case "far data via ldah/lda" `Quick test_far_data_lea_wide;
      Alcotest.test_case "stat accounting invariants" `Quick
        test_addr_accounting;
      Alcotest.test_case "alignment variant" `Quick test_full_sched_alignment;
      Testutil.qtest prop_all_levels_agree ] )

(* --- independent image verification --- *)

let test_verify_all_levels () =
  let src = {|
var a = 1; var b = 2; var big[3000];
func helper(x) { a = a + x; return a * b; }
func main() {
  var i = 0;
  while (i < 20) { big[i] = helper(i); i = i + 1; }
  io_putint(big[19]);
  return 0;
}
|} in
  let world = world_of src in
  let std = Result.get_ok (Linker.Link.link_resolved world) in
  (match Om.Verify.check std with
  | Ok () -> ()
  | Error m -> Alcotest.failf "standard image fails verification: %s" m);
  List.iter
    (fun level ->
      let { Om.image; _ } = om_level level world in
      match Om.Verify.check image with
      | Ok () -> ()
      | Error m ->
          Alcotest.failf "%s image fails verification: %s"
            (Om.level_name level) m)
    Om.all_levels

let test_verify_catches_corruption () =
  let world = world_of {|func main() { io_putint(isqrt(81)); return 0; }|} in
  let { Om.image; _ } = om_level Om.Full world in
  (* smash a branch displacement to point into another procedure's body *)
  let insns = Linker.Image.insns image in
  let victim = ref None in
  Array.iteri
    (fun k i ->
      if !victim = None then
        match i with
        | Isa.Insn.Bsr { ra; _ } ->
            victim := Some (k, Isa.Insn.Bsr { ra; disp = 3000 })
        | _ -> ())
    insns;
  match !victim with
  | None -> Alcotest.fail "no bsr found to corrupt"
  | Some (k, bad) ->
      let text = Bytes.copy image.Linker.Image.text in
      Bytes.set_int32_le text (4 * k) (Int32.of_int (Isa.Encode.insn bad));
      let corrupted = { image with Linker.Image.text } in
      Alcotest.(check bool) "verifier flags the corruption" true
        (Result.is_error (Om.Verify.check corrupted))

(* the remaining corruption tests share one patched-image helper *)
let patch_insn (image : Linker.Image.t) k insn =
  let text = Bytes.copy image.Linker.Image.text in
  Bytes.set_int32_le text (4 * k) (Int32.of_int (Isa.Encode.insn insn));
  { image with Linker.Image.text }

let str_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

let expect_issue what substr image =
  match Om.Verify.check image with
  | Ok () -> Alcotest.failf "%s: verifier passed the corrupted image" what
  | Error m ->
      if not (str_contains m substr) then
        Alcotest.failf "%s: flagged, but not for the planted reason: %s" what m

let corruption_src = {|
var acc = 0;
func helper(x) {
  var i = 0;
  while (i < 8) { acc = acc + x * i; i = i + 1; }
  return acc;
}
func main() { io_putint(helper(7)); return 0; }
|}

(* retarget a call so it lands inside helper's body, past the entry and
   its GP-setup pair — the "branch into mid-procedure" class *)
let test_verify_catches_branch_into_body () =
  let world = world_of corruption_src in
  let { Om.image; _ } = om_level Om.Full world in
  let insns = Linker.Image.insns image in
  let helper =
    match Linker.Image.find_proc image "helper" with
    | Some q -> q
    | None -> Alcotest.fail "no helper procedure in image"
  in
  (* first non-nop strictly past the legitimate entry points; branching
     just after it cannot be excused as nop-skipping *)
  let target =
    let rec find a =
      if a + 4 >= helper.Linker.Image.entry + helper.Linker.Image.size then
        Alcotest.fail "helper too small to corrupt"
      else if I.is_nop insns.((a - image.Linker.Image.text_base) / 4) then
        find (a + 4)
      else a + 4
    in
    find (helper.Linker.Image.entry + 8)
  in
  let victim = ref None in
  Array.iteri
    (fun k i ->
      let addr = image.Linker.Image.text_base + (4 * k) in
      let in_helper =
        match Linker.Image.proc_containing image addr with
        | Some p -> String.equal p.Linker.Image.name "helper"
        | None -> false
      in
      if !victim = None && not in_helper then
        let disp = (target - addr - 4) / 4 in
        match i with
        | I.Bsr { ra; _ } when disp >= -1048576 && disp < 1048576 ->
            victim := Some (k, I.Bsr { ra; disp })
        | _ -> ())
    insns;
  match !victim with
  | None -> Alcotest.fail "no bsr outside helper to corrupt"
  | Some (k, bad) ->
      expect_issue "branch into body" "branch into the middle of helper"
        (patch_insn image k bad)

(* bend a GP-relative load's displacement until its effective address
   leaves the data region *)
let test_verify_catches_gp_load_outside_data () =
  let world = world_of corruption_src in
  let image = Result.get_ok (Linker.Link.link_resolved world) in
  let insns = Linker.Image.insns image in
  let data_end =
    image.Linker.Image.data_base + Bytes.length image.Linker.Image.data
  in
  let victim = ref None in
  Array.iteri
    (fun k i ->
      let addr = image.Linker.Image.text_base + (4 * k) in
      if !victim = None then
        match (i, Linker.Image.proc_containing image addr) with
        | I.Ldq { ra; rb; _ }, Some p when R.equal rb R.gp ->
            let gp = p.Linker.Image.gp_value in
            let candidates =
              [ data_end - gp + 8; image.Linker.Image.data_base - gp - 16 ]
            in
            List.iter
              (fun disp ->
                if !victim = None && disp >= -32768 && disp <= 32767 then
                  victim := Some (k, I.Ldq { ra; rb; disp }))
              candidates
        | _ -> ())
    insns;
  match !victim with
  | None -> Alcotest.fail "no patchable gp-relative ldq found"
  | Some (k, bad) ->
      expect_issue "gp load" "outside data" (patch_insn image k bad)

(* skew the low half of a prologue's GPDISP pair: the recomputed GP no
   longer matches the procedure descriptor *)
let test_verify_catches_broken_gpdisp () =
  let world = world_of corruption_src in
  let image = Result.get_ok (Linker.Link.link_resolved world) in
  let insns = Linker.Image.insns image in
  let victim = ref None in
  Array.iteri
    (fun k i ->
      if !victim = None then
        match i with
        | I.Ldah { ra; rb; _ } when R.equal ra R.gp && R.equal rb R.pv ->
            let rec find_lo j =
              if j >= Array.length insns || j > k + 8 then ()
              else
                match insns.(j) with
                | I.Lda { ra; rb; disp }
                  when R.equal ra R.gp && R.equal rb R.gp ->
                    let disp = if disp < 32000 then disp + 8 else disp - 8 in
                    victim := Some (j, I.Lda { ra; rb; disp })
                | _ -> find_lo (j + 1)
            in
            find_lo (k + 1)
        | _ -> ())
    insns;
  match !victim with
  | None -> Alcotest.fail "no GPDISP pair found to corrupt"
  | Some (j, bad) ->
      expect_issue "gpdisp" "GP setup computes" (patch_insn image j bad)

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [ Alcotest.test_case "verifier passes all levels" `Quick
          test_verify_all_levels;
        Alcotest.test_case "verifier catches corruption" `Quick
          test_verify_catches_corruption;
        Alcotest.test_case "verifier catches branch into a body" `Quick
          test_verify_catches_branch_into_body;
        Alcotest.test_case "verifier catches gp load outside data" `Quick
          test_verify_catches_gp_load_outside_data;
        Alcotest.test_case "verifier catches a broken GPDISP pair" `Quick
          test_verify_catches_broken_gpdisp ] )

(* --- ablation variants preserve behavior --- *)

let test_ablation_preserves_behavior () =
  let src = {|
var total = 0;
func accumulate(x) { total = total + x * x; return total; }
func main() {
  var i = 0;
  while (i < 30) { accumulate(i); i = i + 1; }
  io_putint(total);
  return 0;
}
|} in
  let world = world_of src in
  let std = Result.get_ok (Linker.Link.link_resolved world) in
  let base = (Testutil.run_image std).Machine.Cpu.output in
  let d = Om.Transform.default_options in
  List.iter
    (fun (name, opts) ->
      match Om.optimize_resolved ~transform_options:opts Om.Full world with
      | Ok { Om.image; _ } ->
          Alcotest.(check string) (name ^ " preserves behavior") base
            (Testutil.run_image image).Machine.Cpu.output
      | Error m -> Alcotest.failf "%s: %s" name m)
    [ ("-calls", { d with Om.Transform.opt_calls = false });
      ("-addr", { d with Om.Transform.opt_addr = false });
      ("-setup-motion", { d with Om.Transform.opt_setup_motion = false });
      ("-setup-deletion", { d with Om.Transform.opt_setup_deletion = false });
      ("only-calls",
       { Om.Transform.opt_calls = true;
         opt_addr = false;
         opt_setup_motion = true;
         opt_setup_deletion = false });
      ("nothing",
       { Om.Transform.opt_calls = false;
         opt_addr = false;
         opt_setup_motion = false;
         opt_setup_deletion = false }) ]

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [ Alcotest.test_case "ablation variants preserve behavior" `Quick
          test_ablation_preserves_behavior ] )
