(* The domain pool and the parallel matrix runner: parallel runs must be
   observably identical to serial ones, just faster. *)

let test_pool_preserves_order () =
  let xs = List.init 50 Fun.id in
  Alcotest.(check (list int))
    "map ~jobs:4 = List.map" (List.map succ xs)
    (Reports.Pool.map ~jobs:4 succ xs)

let test_pool_serial_fallback () =
  let xs = [ 3; 1; 4 ] in
  Alcotest.(check (list int))
    "jobs:1 runs inline" (List.map succ xs)
    (Reports.Pool.map ~jobs:1 succ xs)

let test_pool_propagates_failure () =
  match
    Reports.Pool.map ~jobs:3
      (fun x -> if x = 7 then failwith "boom" else x)
      (List.init 20 Fun.id)
  with
  | _ -> Alcotest.fail "expected Worker_failed"
  | exception Reports.Pool.Worker_failed (Failure m) ->
      Alcotest.(check string) "wraps the task's exception" "boom" m
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)

let test_runner_matches_serial () =
  let b =
    match Workloads.Programs.find "compress" with
    | Some b -> b
    | None -> Alcotest.fail "compress benchmark missing"
  in
  let serial =
    List.map
      (fun build ->
        match Reports.Measure.run_benchmark build b with
        | Ok r -> r
        | Error m -> Alcotest.failf "serial measure failed: %s" m)
      Workloads.Suite.all_builds
  in
  let parallel =
    Reports.Runner.results (Reports.Runner.matrix ~jobs:2 [ b ])
  in
  Alcotest.(check int) "row count" (List.length serial)
    (List.length parallel);
  List.iter2
    (fun (s : Reports.Measure.result) (p : Reports.Measure.result) ->
      Alcotest.(check string) "bench" s.Reports.Measure.bench
        p.Reports.Measure.bench;
      Alcotest.(check int) "std cycles" s.Reports.Measure.std_cycles
        p.Reports.Measure.std_cycles;
      Alcotest.(check string) "std output" s.Reports.Measure.std_output
        p.Reports.Measure.std_output;
      Alcotest.(check (list int))
        "per-level cycles"
        (List.map
           (fun (r : Reports.Measure.run) -> r.Reports.Measure.cycles)
           s.Reports.Measure.runs)
        (List.map
           (fun (r : Reports.Measure.run) -> r.Reports.Measure.cycles)
           p.Reports.Measure.runs))
    serial parallel

let suite =
  ( "parallel",
    [ Alcotest.test_case "pool preserves order" `Quick
        test_pool_preserves_order;
      Alcotest.test_case "pool serial fallback" `Quick
        test_pool_serial_fallback;
      Alcotest.test_case "pool propagates failure" `Quick
        test_pool_propagates_failure;
      Alcotest.test_case "parallel matrix = serial matrix" `Slow
        test_runner_matches_serial ] )
