(* The span-relaxation fixed point (Om.Relax), exercised at unit level:
   the pipeline pieces are driven by hand so tests can inject
   span-dependent sites at exactly the widths where decisions flip, and
   compare the relaxed emission against the one-shot conservative one on
   the same transformed program. *)

module S = Om.Symbolic
module I = Isa.Insn
module R = Isa.Reg

let resolve_units units =
  match Linker.Resolve.run units ~archives:[ Runtime.libstd () ] with
  | Ok w -> w
  | Error m -> Alcotest.failf "resolve: %s" m

let lift world =
  match Om.Lift.run world with
  | Ok p -> p
  | Error m -> Alcotest.failf "lift: %s" m

let std_output world =
  match Linker.Link.link_resolved world with
  | Ok image -> (Testutil.run_image image).Machine.Cpu.output
  | Error m -> Alcotest.failf "standard link: %s" m

(* The conservative merged-group plan the pre-relax levels use: a correct
   upper bound for any program, including ones with injected nodes.
   [gat_bytes] overrides the reservation with a single roomier group, for
   tests that add GAT keys beyond what the object code referenced. *)
let merged_plan ?gat_bytes (world : Linker.Resolve.t) =
  let merged = Linker.Gat.merge world in
  match gat_bytes with
  | Some b ->
      Om.Datalayout.plan world
        ~group_of_module:
          (Array.map (fun _ -> 0) merged.Linker.Gat.group_of_module)
        ~ngroups:1 ~group_gat_bytes:[| b |]
  | None ->
      let bytes =
        Array.init merged.Linker.Gat.ngroups (fun g ->
            let first = merged.Linker.Gat.group_first_slot.(g) in
            let next =
              if g + 1 < merged.Linker.Gat.ngroups then
                merged.Linker.Gat.group_first_slot.(g + 1)
              else Array.length merged.Linker.Gat.slots
            in
            8 * (next - first))
      in
      Om.Datalayout.plan world
        ~group_of_module:merged.Linker.Gat.group_of_module
        ~ngroups:merged.Linker.Gat.ngroups ~group_gat_bytes:bytes

(* Relax, lower, verify; any failure fails the test. *)
let relax_lower program plan =
  let stats = Om.Stats.create () in
  let plan =
    match Om.Relax.run program plan stats with
    | Ok p -> p
    | Error m -> Alcotest.failf "relax: %s" m
  in
  match Om.Lower.run program plan with
  | Error m -> Alcotest.failf "lower: %s" m
  | Ok (image, _) -> (
      match Om.Verify.check image with
      | Ok () -> (image, stats)
      | Error m -> Alcotest.failf "verify: %s" m)

let find_proc program name =
  match
    Array.to_list program.S.procs
    |> List.find_opt (fun (p : S.proc) -> String.equal p.S.sp_name name)
  with
  | Some p -> p
  | None -> Alcotest.failf "no procedure %s in lifted program" name

let seven = {|func main() { io_putint(7); return 0; }|}

(* Every relaxation decision below is made on dead code appended after
   main's return: the sites are placed (and must be correct) statically,
   while the program's runtime behavior pins down that nothing else was
   disturbed. *)

let test_far_branches_at_disp21_edge () =
  let world = resolve_units [ Testutil.compile seven ] in
  let expected = std_output world in
  let program = lift world in
  let main = find_proc program "main" in
  let mk i = S.make_node program i in
  let far = S.fresh_label program in
  let near = S.fresh_label program in
  let bc =
    mk (S.Branch { insn = I.Bcond { cond = I.Beq; ra = R.zero; disp = 0 };
                   target = far })
  in
  let bsr = mk (S.Branch { insn = I.Bsr { ra = R.ra; disp = 0 }; target = far }) in
  let br_grow = mk (S.Branch { insn = I.Br { ra = R.zero; disp = 0 }; target = far }) in
  let br_fit = mk (S.Branch { insn = I.Br { ra = R.zero; disp = 0 }; target = near }) in
  (* br_fit -> land_near spans exactly 1048575 words, the last value
     fits_disp21 accepts; the three sites before it span one-plus words
     more and must all grow. Their growth shifts br_fit and its target
     together, so the edge distance survives every pass. *)
  let pad = List.init 1048575 (fun _ -> mk (S.Raw I.nop)) in
  let land_near = mk (S.Raw I.nop) in
  land_near.S.labels <- [ near ];
  let land_far = mk (S.Raw I.nop) in
  land_far.S.labels <- [ far ];
  main.S.body <-
    main.S.body @ (bc :: bsr :: br_grow :: br_fit :: pad)
    @ [ land_near; land_far ];
  let image, stats = relax_lower program (merged_plan world) in
  (match br_fit.S.insn with
  | S.Branch _ -> ()
  | _ -> Alcotest.fail "the exactly-in-range branch must keep its short form");
  (match br_grow.S.insn with
  | S.Br_far { ra; _ } when R.equal ra R.zero -> ()
  | _ -> Alcotest.fail "out-of-range br must grow to Br_far");
  (match bsr.S.insn with
  | S.Bsr_far { ra; _ } when R.equal ra R.ra -> ()
  | _ -> Alcotest.fail "out-of-range bsr must grow to Bsr_far");
  (match bc.S.insn with
  | S.Bcond_far { cond = I.Beq; _ } -> ()
  | _ -> Alcotest.fail "out-of-range bcond must grow to Bcond_far");
  Alcotest.(check int) "three sites grown" 3 stats.Om.Stats.sites_grown;
  Alcotest.(check int) "converges in two passes" 2
    stats.Om.Stats.relax_iterations;
  Alcotest.(check string) "behavior unchanged" expected
    (Testutil.run_image image).Machine.Cpu.output

let test_branch_to_next_is_elided () =
  let world = resolve_units [ Testutil.compile seven ] in
  let expected = std_output world in
  let program = lift world in
  let main = find_proc program "main" in
  let lbl = S.fresh_label program in
  let br =
    S.make_node program
      (S.Branch { insn = I.Br { ra = R.zero; disp = 0 }; target = lbl })
  in
  let landing = S.make_node program (S.Raw I.nop) in
  landing.S.labels <- [ lbl ];
  main.S.body <- main.S.body @ [ br; landing ];
  let plan = merged_plan world in
  (* one-shot emission keeps the branch; relaxation must drop it *)
  let one_shot =
    match Om.Lower.run program plan with
    | Ok (image, _) -> Bytes.length image.Linker.Image.text
    | Error m -> Alcotest.failf "one-shot lower: %s" m
  in
  let image, stats = relax_lower program plan in
  (match br.S.insn with
  | S.Elided (S.Branch _) -> ()
  | _ -> Alcotest.fail "branch to the next instruction must be elided");
  (* the lifted runtime may contribute its own branch-to-next sites; the
     injected one is among them and each saves exactly one word *)
  Alcotest.(check bool) "the injected branch is counted" true
    (stats.Om.Stats.branches_elided >= 1);
  Alcotest.(check int) "text shrinks by exactly the elided branches"
    (one_shot - (4 * stats.Om.Stats.branches_elided))
    (Bytes.length image.Linker.Image.text);
  Alcotest.(check string) "behavior unchanged" expected
    (Testutil.run_image image).Machine.Cpu.output

let test_gat_slots_past_window_grow_wide () =
  let world = resolve_units [ Testutil.compile seven ] in
  let expected = std_output world in
  let program = lift world in
  let main = find_proc program "main" in
  (* 8300 distinct literal keys force slots past the 16-bit GP window
     (the GP sits 0x7ff0 into the table, so slots from index 8190 on are
     out of a short Gatload's reach) *)
  let nconst = 8300 in
  let injected =
    List.init nconst (fun i ->
        S.make_node program
          (S.Gatload { ra = R.t0; key = S.Pconst (Int64.of_int (1_000_000 + i)) }))
  in
  main.S.body <- main.S.body @ injected;
  let plan = merged_plan ~gat_bytes:(8 * (nconst + 64)) world in
  let image, stats = relax_lower program plan in
  (* keys referenced after the injected ones (the runtime's own loads)
     land on even later slots and grow too — count program-wide *)
  let wide = ref 0 in
  S.iter_nodes program (fun _ n ->
      match n.S.insn with S.Gatload_wide _ -> incr wide | _ -> ());
  Alcotest.(check bool) "some slots went wide" true (!wide > 0);
  Alcotest.(check bool) "most slots stayed short" true (!wide < nconst / 2);
  Alcotest.(check int) "growth is counted" !wide stats.Om.Stats.sites_grown;
  Alcotest.(check string) "behavior unchanged" expected
    (Testutil.run_image image).Machine.Cpu.output

let test_lea_wide_in_window_narrows () =
  let world =
    resolve_units
      [ Testutil.compile
          {|var g = 5; func main() { io_putint(g); return 0; }|} ]
  in
  let expected = std_output world in
  let program = lift world in
  let main = find_proc program "main" in
  let gi = ref (-1) in
  Array.iteri
    (fun i (o : Linker.Resolve.obj_rec) ->
      if String.equal o.Linker.Resolve.o_name "g" then gi := i)
    world.Linker.Resolve.objs;
  Alcotest.(check bool) "g resolved" true (!gi >= 0);
  let lea =
    S.make_node program
      (S.Lea_wide { ra = R.t0; target = Linker.Resolve.Tobj !gi; addend = 0 })
  in
  main.S.body <- main.S.body @ [ lea ];
  let image, stats = relax_lower program (merged_plan world) in
  (match lea.S.insn with
  | S.Gprel { insn = I.Lda _; part = S.Pfull; _ } -> ()
  | _ -> Alcotest.fail "in-window lea-wide must narrow to a gp-relative lda");
  Alcotest.(check int) "one site narrowed" 1 stats.Om.Stats.sites_narrowed;
  Alcotest.(check string) "behavior unchanged" expected
    (Testutil.run_image image).Machine.Cpu.output

(* The serial oracle: on the same transformed program, relaxed emission
   must behave exactly like the one-shot conservative emission and never
   produce more text. *)
let test_relaxed_matches_one_shot_oracle () =
  List.iter
    (fun src ->
      let world = resolve_units [ Testutil.compile src ] in
      let program = lift world in
      let plan = merged_plan world in
      let stats = Om.Stats.create () in
      ignore (Om.Transform.run Om.Transform.Full program plan stats);
      let conservative =
        match Om.Lower.run program plan with
        | Ok (image, _) -> image
        | Error m -> Alcotest.failf "one-shot lower: %s" m
      in
      let relaxed, _ = relax_lower program plan in
      Alcotest.(check string) "identical behavior"
        (Testutil.run_image conservative).Machine.Cpu.output
        (Testutil.run_image relaxed).Machine.Cpu.output;
      Alcotest.(check bool) "text never grows" true
        (Bytes.length relaxed.Linker.Image.text
        <= Bytes.length conservative.Linker.Image.text))
    [ seven;
      {|var a = 3; var b = 4;
        func max(x, y) { if (x > y) { return x; } return y; }
        func main() {
          var i; var s;
          s = 0;
          for (i = 0; i < 10; i = i + 1) { s = s + max(a, i * b); }
          io_putint(s);
          return 0; }|};
      {|var tbl[16];
        func fill() { var i; for (i = 0; i < 16; i = i + 1) { tbl[i] = i * i; } return 0; }
        func main() {
          fill();
          io_putint(tbl[3] + tbl[15]);
          return 0; }|} ]

(* End-to-end over the public pipeline: every OM level agrees with the
   standard link, and the relaxing levels never emit more text than the
   non-relaxing baseline of the same program. *)
let test_levels_agree_and_text_shrinks () =
  let src =
    {|var acc = 0;
      func bump(n) { acc = acc + n; return acc; }
      func main() {
        var i;
        for (i = 1; i < 6; i = i + 1) { bump(i); }
        io_putint(acc);
        return 0; }|}
  in
  let world = resolve_units [ Testutil.compile src ] in
  let expected = std_output world in
  let text_of level =
    match Om.optimize_resolved level world with
    | Error m -> Alcotest.failf "%s: %s" (Om.level_name level) m
    | Ok { Om.image; stats } ->
        Alcotest.(check string)
          (Om.level_name level ^ " behavior")
          expected
          (Testutil.run_image image).Machine.Cpu.output;
        (Bytes.length image.Linker.Image.text, stats)
  in
  let noopt, _ = text_of Om.No_opt in
  List.iter
    (fun level ->
      let t, stats = text_of level in
      Alcotest.(check bool)
        (Om.level_name level ^ " text <= om-noopt")
        true (t <= noopt);
      Alcotest.(check bool)
        (Om.level_name level ^ " ran the fixed point")
        true
        (stats.Om.Stats.relax_iterations >= 1))
    [ Om.Full; Om.Full_sched; Om.Gc ]

let suite =
  ( "relax",
    [ Alcotest.test_case "far branch forms at the disp21 edge" `Slow
        test_far_branches_at_disp21_edge;
      Alcotest.test_case "branch to next is elided" `Quick
        test_branch_to_next_is_elided;
      Alcotest.test_case "GAT slots past the window grow wide" `Quick
        test_gat_slots_past_window_grow_wide;
      Alcotest.test_case "in-window lea-wide narrows" `Quick
        test_lea_wide_in_window_narrows;
      Alcotest.test_case "relaxed emission matches the one-shot oracle" `Quick
        test_relaxed_matches_one_shot_oracle;
      Alcotest.test_case "levels agree and text never grows" `Quick
        test_levels_agree_and_text_shrinks ] )
