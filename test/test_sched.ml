(* The scheduling pool in isolation: worker fan-out, deterministic
   coalescing, shed-under-pressure, queued deadlines, crashes, and the
   seal/drain/stop lifecycle — all with blocker jobs released by hand,
   so nothing here depends on timing luck. *)

module Json = Obs.Json
module Sched = Server.Sched

let fresh () = Obs.Metrics.create ()

(* a job the test releases explicitly: deterministic worker occupancy *)
let blocker () =
  let release = Atomic.make false in
  let job () =
    while not (Atomic.get release) do
      Unix.sleepf 0.005
    done;
    Json.String "released"
  in
  (release, job)

let submit_ok t ?key job =
  match Sched.submit t ?key job with
  | Sched.Accepted h -> h
  | Sched.Shed _ -> Alcotest.fail "unexpected shed"
  | Sched.Closed -> Alcotest.fail "unexpected closed"

let reply_string = function
  | Sched.Reply (Json.String s) -> s
  | Sched.Reply _ -> Alcotest.fail "unexpected reply shape"
  | Sched.Crashed m -> Alcotest.failf "crashed: %s" m
  | Sched.Timed_out -> Alcotest.fail "timed out"
  | Sched.Aborted m -> Alcotest.failf "aborted: %s" m

let test_basic_fanout () =
  let t = Sched.create ~workers:2 ~registry:(fresh ()) () in
  Fun.protect ~finally:(fun () -> Sched.stop t) @@ fun () ->
  let handles =
    List.init 16 (fun i ->
        (i, submit_ok t (fun () -> Json.String (string_of_int (i * i)))))
  in
  List.iter
    (fun (i, h) ->
      Alcotest.(check string)
        (Printf.sprintf "job %d" i)
        (string_of_int (i * i))
        (reply_string (Sched.wait t h)))
    handles;
  let s = Sched.stats t in
  Alcotest.(check int) "all submitted" 16 s.Sched.st_submitted;
  Alcotest.(check int) "all completed" 16 s.Sched.st_completed;
  Alcotest.(check int) "nothing coalesced" 0 s.Sched.st_coalesced

let test_coalescing_deterministic () =
  let t = Sched.create ~workers:1 ~registry:(fresh ()) () in
  Fun.protect ~finally:(fun () -> Sched.stop t) @@ fun () ->
  let release, job = blocker () in
  let hb = submit_ok t job in
  (* the worker is busy: both keyed submissions are pending together,
     so the second MUST coalesce onto the first *)
  let runs = Atomic.make 0 in
  let keyed () =
    Atomic.incr runs;
    Json.String "shared"
  in
  let h1 = submit_ok t ~key:"k" keyed in
  let h2 = submit_ok t ~key:"k" keyed in
  Alcotest.(check bool) "first keyed is the computation" false
    (Sched.was_coalesced h1);
  Alcotest.(check bool) "second keyed coalesced" true (Sched.was_coalesced h2);
  Atomic.set release true;
  Alcotest.(check string) "blocker done" "released"
    (reply_string (Sched.wait t hb));
  Alcotest.(check string) "first gets the shared reply" "shared"
    (reply_string (Sched.wait t h1));
  Alcotest.(check string) "second gets the shared reply" "shared"
    (reply_string (Sched.wait t h2));
  Alcotest.(check int) "the job ran once" 1 (Atomic.get runs);
  Alcotest.(check int) "one coalesce counted" 1
    (Sched.stats t).Sched.st_coalesced

(* wait until the pool has picked up [n] running jobs, so queue-depth
   assertions don't race the workers *)
let rec wait_busy t n =
  if (Sched.stats t).Sched.st_busy < n then begin
    Unix.sleepf 0.005;
    wait_busy t n
  end

let test_shed_at_queue_limit () =
  let t = Sched.create ~workers:1 ~queue_limit:1 ~registry:(fresh ()) () in
  Fun.protect ~finally:(fun () -> Sched.stop t) @@ fun () ->
  let release, job = blocker () in
  let hb = submit_ok t job in
  wait_busy t 1;
  (* with the worker blocked, one submission fits the queue and the
     next MUST shed — never hang *)
  let fits = ref None and shed = ref None in
  (match Sched.submit t (fun () -> Json.String "fits") with
  | Sched.Accepted h -> fits := Some h
  | _ -> Alcotest.fail "queue slot refused");
  (match Sched.submit t (fun () -> Json.String "never") with
  | Sched.Shed { queue_depth; retry_after_ms } ->
      shed := Some (queue_depth, retry_after_ms)
  | Sched.Accepted _ -> Alcotest.fail "over-limit submission accepted"
  | Sched.Closed -> Alcotest.fail "unexpected closed");
  (match !shed with
  | Some (depth, retry_ms) ->
      Alcotest.(check int) "shed reports the full queue" 1 depth;
      Alcotest.(check bool) "retry hint positive" true (retry_ms > 0)
  | None -> ());
  Atomic.set release true;
  ignore (Sched.wait t hb);
  (match !fits with
  | Some h ->
      Alcotest.(check string) "queued job still completes" "fits"
        (reply_string (Sched.wait t h))
  | None -> ());
  Alcotest.(check int) "one shed counted" 1 (Sched.stats t).Sched.st_shed

let test_deadline_while_queued () =
  let t = Sched.create ~workers:1 ~registry:(fresh ()) () in
  Fun.protect ~finally:(fun () -> Sched.stop t) @@ fun () ->
  let release, job = blocker () in
  let hb = submit_ok t job in
  let hq = submit_ok t (fun () -> Json.String "late") in
  (match Sched.wait t ~deadline:(Unix.gettimeofday () +. 0.2) hq with
  | Sched.Timed_out -> ()
  | _ -> Alcotest.fail "queued deadline did not fire");
  Atomic.set release true;
  ignore (Sched.wait t hb)

let test_crash_is_structured () =
  let t = Sched.create ~workers:1 ~registry:(fresh ()) () in
  Fun.protect ~finally:(fun () -> Sched.stop t) @@ fun () ->
  let h = submit_ok t (fun () -> failwith "boom") in
  match Sched.wait t h with
  | Sched.Crashed m ->
      Alcotest.(check bool) "crash carries the message" true
        (Astring.String.is_infix ~affix:"boom" m)
  | _ -> Alcotest.fail "crash not surfaced as Crashed"

let test_seal_drain_stop () =
  let t = Sched.create ~workers:2 ~registry:(fresh ()) () in
  let handles =
    List.init 8 (fun i -> submit_ok t (fun () -> Json.Int i))
  in
  Sched.seal t;
  (match Sched.submit t (fun () -> Json.Null) with
  | Sched.Closed -> ()
  | _ -> Alcotest.fail "sealed pool accepted work");
  Alcotest.(check bool) "drain finishes the backlog" true
    (Sched.drain t ~deadline:(Unix.gettimeofday () +. 10.));
  List.iteri
    (fun i h ->
      match Sched.wait t h with
      | Sched.Reply (Json.Int j) -> Alcotest.(check int) "drained reply" i j
      | _ -> Alcotest.fail "drained job lost its reply")
    handles;
  Sched.stop t;
  (* stop is idempotent and post-stop submissions stay Closed *)
  Sched.stop t;
  match Sched.submit t (fun () -> Json.Null) with
  | Sched.Closed -> ()
  | _ -> Alcotest.fail "stopped pool accepted work"

let suite =
  ( "sched",
    [ Alcotest.test_case "jobs fan out and all reply" `Quick test_basic_fanout;
      Alcotest.test_case "identical in-flight requests coalesce" `Quick
        test_coalescing_deterministic;
      Alcotest.test_case "bounded queue sheds, never hangs" `Quick
        test_shed_at_queue_limit;
      Alcotest.test_case "deadlines fire while queued" `Quick
        test_deadline_while_queued;
      Alcotest.test_case "worker crash surfaces as Crashed" `Quick
        test_crash_is_structured;
      Alcotest.test_case "seal, drain, stop lifecycle" `Quick
        test_seal_drain_stop ] )
