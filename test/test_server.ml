(* The link service: wire-protocol round-trips, the incremental engine's
   cache behaviour, and an end-to-end daemon smoke test. *)

module P = Server.Protocol
module Json = Obs.Json

(* --- wire protocol --- *)

let roundtrip env =
  let j = P.request_to_json env in
  match Json.parse (Json.to_string ~minify:true j) with
  | Error m -> Alcotest.failf "reparse failed: %s" m
  | Ok j' -> (
      match P.request_of_json j' with
      | Error m -> Alcotest.failf "decode failed: %s" m
      | Ok env' -> env')

let test_request_roundtrips () =
  let cases =
    [ P.request (P.Ping { delay_ms = 0 });
      P.request ~deadline_ms:250 (P.Ping { delay_ms = 40 });
      P.request (P.Compile { files = [ "a.mc"; "b.o" ]; sources = [] });
      P.request ~trace:true
        (P.Link
           { files = [ "x.mc" ];
             sources = [];
             level = "sched";
             entry = Some "main" });
      P.request
        (P.Link
           { files = [];
             sources =
               [ { P.src_name = "m.mc"; src_text = "func main() { return 0; }" } ];
             level = "full";
             entry = None });
      P.request P.Stats;
      P.request (P.Suite { bench = Some "li"; jobs = Some 2 });
      P.request (P.Suite { bench = None; jobs = None });
      P.request P.Shutdown ]
  in
  List.iter
    (fun env ->
      Alcotest.(check bool)
        (Printf.sprintf "%s round-trips" (P.kind_of_request env.P.req))
        true
        (roundtrip env = env))
    cases

let test_request_rejects_garbage () =
  let bad j =
    match P.request_of_json j with
    | Ok _ -> Alcotest.fail "accepted a malformed request"
    | Error _ -> ()
  in
  bad (Json.Obj []);
  bad (Json.Obj [ ("kind", Json.String "frobnicate") ]);
  bad (Json.Obj [ ("kind", Json.String "link") ]);
  bad
    (Json.Obj
       [ ("kind", Json.String "link"); ("files", Json.String "not-a-list") ])

let test_hex_roundtrip () =
  let all_bytes = String.init 256 Char.chr in
  (match P.hex_decode (P.hex_encode all_bytes) with
  | Ok s -> Alcotest.(check string) "all byte values survive" all_bytes s
  | Error m -> Alcotest.failf "decode failed: %s" m);
  (match P.hex_decode "0g" with
  | Ok _ -> Alcotest.fail "bad digit accepted"
  | Error _ -> ());
  match P.hex_decode "abc" with
  | Ok _ -> Alcotest.fail "odd length accepted"
  | Error _ -> ()

let test_framing_over_socketpair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  let doc =
    Json.Obj [ ("kind", Json.String "ping"); ("payload", Json.String "αβγ") ]
  in
  P.send a doc;
  (match P.recv b with
  | P.Frame j ->
      Alcotest.(check string) "frame round-trips"
        (Json.to_string ~minify:true doc)
        (Json.to_string ~minify:true j)
  | _ -> Alcotest.fail "expected a frame");
  (* a torn frame: a length header promising bytes that never come *)
  ignore (Unix.write_substring a "\x00\x00\x00\x0a" 0 4);
  Unix.close a;
  match P.recv b with
  | P.Bad _ -> ()
  | P.Frame _ -> Alcotest.fail "torn frame decoded"
  | P.Eof -> Alcotest.fail "torn frame reported as clean EOF"

let test_eof_at_boundary () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close a;
  Fun.protect ~finally:(fun () -> try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  match P.recv b with
  | P.Eof -> ()
  | _ -> Alcotest.fail "expected clean EOF"

let test_oversized_frame_rejected () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* a header claiming ~2 GB: must be rejected without reading it *)
  ignore (Unix.write_substring a "\x7f\xff\xff\xff" 0 4);
  match P.recv b with
  | P.Bad m ->
      Alcotest.(check bool) "error names the length" true
        (Astring.String.is_infix ~affix:"length" m)
  | _ -> Alcotest.fail "oversized frame accepted"

(* --- the incremental engine --- *)

let tmp_sources () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "omlt_server_%d_%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o755;
  dir

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let util_src = "func helper(x) { return x * 3 + 1; }\n"

let main_src =
  "extern func helper(x);\nfunc main() { io_putint_nl(helper(13)); return 0; }\n"

let engine_inputs () =
  [ Server.Engine.Source { name = "util.mc"; text = util_src };
    Server.Engine.Source { name = "main.mc"; text = main_src } ]

let link_ok engine ?(level = "full") inputs =
  match Server.Engine.link engine ~level inputs with
  | Ok r -> r
  | Error m -> Alcotest.failf "engine link failed: %s" m

let test_engine_incremental_relink () =
  let engine = Server.Engine.create ~store:(Store.in_memory ()) () in
  (* cold link: everything misses, everything is lifted *)
  let _, _, cold = link_ok engine (engine_inputs ()) in
  Alcotest.(check bool) "cold link is not an image hit" false
    cold.Server.Engine.li_image_hit;
  let cold_lifts = cold.Server.Engine.li_lifted.Store.disk_misses in
  Alcotest.(check bool) "cold link lifts user modules and libstd" true
    (cold_lifts > 2);
  (* identical relink: served whole from the image cache, no lifting *)
  let image1, _, warm = link_ok engine (engine_inputs ()) in
  Alcotest.(check bool) "unchanged relink is an image hit" true
    warm.Server.Engine.li_image_hit;
  Alcotest.(check int) "unchanged relink lifts nothing" 0
    (warm.Server.Engine.li_lifted.Store.disk_misses
    + warm.Server.Engine.li_lifted.Store.mem_hits);
  (* one-module edit: exactly one new lift, every other module (incl.
     every libstd member) is served from the store — the acceptance
     criterion of the incremental path *)
  let edited =
    [ Server.Engine.Source
        { name = "util.mc"; text = "func helper(x) { return x * 5 + 1; }\n" };
      Server.Engine.Source { name = "main.mc"; text = main_src } ]
  in
  let image2, _, inc = link_ok engine edited in
  Alcotest.(check bool) "edited relink is not an image hit" false
    inc.Server.Engine.li_image_hit;
  Alcotest.(check int) "exactly one module re-lifted" 1
    inc.Server.Engine.li_lifted.Store.disk_misses;
  Alcotest.(check int) "every unchanged lift is a cache hit" (cold_lifts - 1)
    inc.Server.Engine.li_lifted.Store.mem_hits;
  Alcotest.(check int) "exactly one module re-compiled" 1
    inc.Server.Engine.li_cunit.Store.disk_misses;
  (* the edit must actually change behaviour *)
  let out image =
    (Testutil.run_image image).Machine.Cpu.output
  in
  Alcotest.(check string) "original program output" "40\n" (out image1);
  Alcotest.(check string) "edited program output" "66\n" (out image2)

let test_engine_matches_direct_link () =
  (* the engine's cached pipeline must produce bit-identical images to
     the one-shot [Om.link] path, at every level *)
  let units =
    [ Testutil.compile ~name:"util.mc" util_src;
      Testutil.compile ~name:"main.mc" main_src ]
  in
  List.iter
    (fun (level_name, om_level) ->
      let engine = Server.Engine.create ~store:(Store.in_memory ()) () in
      let image, _, _ = link_ok engine ~level:level_name (engine_inputs ()) in
      let direct =
        match Om.link ~level:om_level units ~archives:[ Runtime.libstd () ] with
        | Ok { Om.image; _ } -> image
        | Error m -> Alcotest.failf "direct link failed: %s" m
      in
      Alcotest.(check string)
        (Printf.sprintf "engine image = direct image at %s" level_name)
        (Store.Codec.image_to_string direct)
        (Store.Codec.image_to_string image))
    (* derived from all_levels so a new level is covered automatically *)
    (List.map (fun l -> (Om.level_name l, l)) Om.all_levels)

let test_relink_timings () =
  let b =
    match Workloads.Programs.find "li" with
    | Some b -> b
    | None -> Alcotest.fail "li benchmark missing"
  in
  match Server.Engine.relink_timings b with
  | Error m -> Alcotest.failf "relink timing failed: %s" m
  | Ok r ->
      Alcotest.(check bool) "cold time positive" true (r.Obs.Report.cold_s > 0.);
      Alcotest.(check bool) "warm time positive" true (r.Obs.Report.warm_s > 0.)

(* --- end-to-end daemon smoke test --- *)

let test_daemon_smoke () =
  let dir = tmp_sources () in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ())
  @@ fun () ->
  let util_path = Filename.concat dir "util.mc" in
  let main_path = Filename.concat dir "main.mc" in
  write_file util_path util_src;
  write_file main_path main_src;
  let socket = Filename.concat dir "d.sock" in
  let engine = Server.Engine.create ~store:(Store.in_memory ()) () in
  let server =
    Domain.spawn (fun () ->
        Server.Daemon.serve ~engine ~socket ())
  in
  (* the daemon binds asynchronously: retry the connect briefly *)
  let rec connect tries =
    match Server.Client.connect ~socket () with
    | Ok fd -> fd
    | Error m ->
        if tries = 0 then Alcotest.failf "could not connect: %s" m
        else begin
          Unix.sleepf 0.05;
          connect (tries - 1)
        end
  in
  let fd = connect 100 in
  Fun.protect ~finally:(fun () -> Server.Client.close fd) @@ fun () ->
  (* ping *)
  (match Server.Client.ping fd () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ping failed: %s" e.P.message);
  (* link through the daemon; the bytes must equal an in-process link *)
  let daemon_bytes, fields =
    match Server.Client.link fd ~level:"full" [ util_path; main_path ] with
    | Ok r -> r
    | Error e -> Alcotest.failf "daemon link failed: %s" e.P.message
  in
  let direct =
    (* the daemon names file inputs <base>.o — match it so any naming
       sensitivity shows up as a bytes mismatch, not a flake *)
    match
      Om.link ~level:Om.Full
        [ Testutil.compile ~name:"util.o" util_src;
          Testutil.compile ~name:"main.o" main_src ]
        ~archives:[ Runtime.libstd () ]
    with
    | Ok { Om.image; _ } -> Store.Codec.image_to_string image
    | Error m -> Alcotest.failf "direct link failed: %s" m
  in
  Alcotest.(check string) "daemon image bytes = in-process image bytes" direct
    daemon_bytes;
  Alcotest.(check bool) "reply carries store counters" true
    (Server.Client.field "store" fields <> None);
  (* a slow ping against a short deadline: structured timeout, and the
     connection keeps working afterwards *)
  (match Server.Client.ping fd ~deadline_ms:50 ~delay_ms:2000 () with
  | Ok _ -> Alcotest.fail "deadline did not fire"
  | Error e -> Alcotest.(check string) "timeout error code" "timeout" e.P.code);
  (match Server.Client.ping fd () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ping after timeout failed: %s" e.P.message);
  (* warm relink through the daemon: image hit, zero lifts *)
  (match Server.Client.link fd ~level:"full" [ util_path; main_path ] with
  | Error e -> Alcotest.failf "warm daemon link failed: %s" e.P.message
  | Ok (warm_bytes, warm_fields) ->
      Alcotest.(check string) "warm bytes identical" direct warm_bytes;
      Alcotest.(check bool) "warm link is an image hit" true
        (match
           Option.bind (Server.Client.field "image_hit" warm_fields)
             Json.get_bool
         with
        | Some b -> b
        | None -> false));
  (* shutdown: daemon replies, exits cleanly, removes its socket *)
  (match Server.Client.shutdown fd with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "shutdown failed: %s" e.P.message);
  (match Domain.join server with
  | Ok () -> ()
  | Error m -> Alcotest.failf "daemon exited with: %s" m);
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

(* Scripted latencies fetched back over the wire: the registry's
   quantiles must be *exact* for values below the unit-bucket limit,
   and the daemon must expose per-request-kind histograms for the
   requests the client actually sent. *)
let test_daemon_metrics_exact () =
  let dir = tmp_sources () in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let socket = Filename.concat dir "d.sock" in
  let reg = Obs.Metrics.create () in
  let engine =
    Server.Engine.create ~store:(Store.in_memory ()) ~metrics:reg ()
  in
  (* a scripted request sequence under a kind label the test never
     sends over the wire, so live daemon latencies cannot pollute it *)
  let h =
    Obs.Metrics.histogram ~registry:reg
      ~labels:[ ("kind", "scripted") ]
      "omlinkd_request_us"
  in
  for v = 1 to 100 do
    Obs.Metrics.observe h v
  done;
  let server =
    Domain.spawn (fun () -> Server.Daemon.serve ~engine ~socket ())
  in
  let rec connect tries =
    match Server.Client.connect ~socket () with
    | Ok fd -> fd
    | Error m ->
        if tries = 0 then Alcotest.failf "could not connect: %s" m
        else begin
          Unix.sleepf 0.05;
          connect (tries - 1)
        end
  in
  let fd = connect 100 in
  Fun.protect ~finally:(fun () -> Server.Client.close fd) @@ fun () ->
  (* one real request first, so a live per-kind histogram exists too *)
  (match Server.Client.ping fd () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ping failed: %s" e.P.message);
  let fields =
    match Server.Client.metrics fd with
    | Ok fields -> fields
    | Error e -> Alcotest.failf "metrics failed: %s" e.P.message
  in
  let snapshot =
    match Server.Client.field "metrics" fields with
    | Some j -> j
    | None -> Alcotest.fail "metrics reply carries no snapshot"
  in
  let histograms =
    match Option.bind (Json.member "histograms" snapshot) Json.get_list with
    | Some l -> l
    | None -> Alcotest.fail "snapshot carries no histogram list"
  in
  let kind_of j =
    Option.bind (Json.member "labels" j) (Json.member "kind")
    |> Fun.flip Option.bind Json.get_string
  in
  let find_hist kind =
    List.find_opt
      (fun j ->
        Option.bind (Json.member "name" j) Json.get_string
          = Some "omlinkd_request_us"
        && kind_of j = Some kind)
      histograms
  in
  (match find_hist "scripted" with
  | None -> Alcotest.fail "scripted histogram missing from wire snapshot"
  | Some j ->
      let int_field name =
        match Option.bind (Json.member name j) Json.get_int with
        | Some v -> v
        | None -> Alcotest.failf "histogram field %s missing" name
      in
      (* values 1..100: every sample sits in a unit-width bucket, so
         the rank-based quantiles are the true order statistics *)
      Alcotest.(check int) "count" 100 (int_field "count");
      Alcotest.(check int) "sum" 5050 (int_field "sum");
      Alcotest.(check int) "p50 exact" 50 (int_field "p50");
      Alcotest.(check int) "p95 exact" 95 (int_field "p95");
      Alcotest.(check int) "p99 exact" 99 (int_field "p99");
      Alcotest.(check int) "max exact" 100 (int_field "max"));
  (match find_hist "ping" with
  | None -> Alcotest.fail "no per-kind histogram for the ping we sent"
  | Some j ->
      let count =
        match Option.bind (Json.member "count" j) Json.get_int with
        | Some v -> v
        | None -> Alcotest.fail "ping histogram has no count"
      in
      Alcotest.(check bool) "ping latency recorded" true (count >= 1));
  (* the prometheus rendering travels alongside the snapshot *)
  (match
     Option.bind (Server.Client.field "prometheus" fields) Json.get_string
   with
  | None -> Alcotest.fail "metrics reply carries no prometheus text"
  | Some text ->
      Alcotest.(check bool) "prometheus names the histogram" true
        (Astring.String.is_infix ~affix:"omlinkd_request_us" text));
  (match Server.Client.shutdown fd with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "shutdown failed: %s" e.P.message);
  match Domain.join server with
  | Ok () -> ()
  | Error m -> Alcotest.failf "daemon exited with: %s" m

(* `bench compare` must exit non-zero when fed a synthetically
   regressed report, and zero on an identical pair. *)
let test_bench_compare_exit_codes () =
  (* resolved relative to the test binary, so the test works from any
     cwd (dune runtest uses _build/default/test, dune exec does not) *)
  let bench_exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bench" "main.exe"))
  in
  if not (Sys.file_exists bench_exe) then
    Alcotest.fail "bench/main.exe not built alongside the tests";
  let dir = tmp_sources () in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let report ?(text_bytes = 3600) ~cycles ~pct () =
    let run =
      { Obs.Report.level = "om-full";
        cycles;
        insns = 900;
        improvement_pct = pct;
        counters = [];
        attribution = None;
        fault = None;
        host = None;
        size =
          Some { Obs.Report.text_bytes; data_bytes = 512; gat_bytes = 64 } }
    in
    Obs.Report.make
      [ { Obs.Report.bench = "b";
          build = "compile-each";
          std_cycles = 1200;
          std_insns = 1000;
          std_attribution = None;
          std_fault = None;
          outputs_agree = true;
          runs = [ run ];
          std_host = None;
          relink = None;
          std_size = None } ]
  in
  let write name r =
    let path = Filename.concat dir name in
    Obs.Report.write path r;
    path
  in
  let old_p = write "old.json" (report ~cycles:1000 ~pct:20.0 ()) in
  let same_p = write "same.json" (report ~cycles:1000 ~pct:20.0 ()) in
  let bad_p = write "bad.json" (report ~cycles:1100 ~pct:12.0 ()) in
  let fat_p =
    (* cycles untouched, text 2.8% bigger: only the size gate can fire *)
    write "fat.json" (report ~text_bytes:3700 ~cycles:1000 ~pct:20.0 ())
  in
  let run args =
    Sys.command
      (Filename.quote_command bench_exe ~stdout:Filename.null
         ("compare" :: args))
  in
  Alcotest.(check int) "identical reports pass" 0 (run [ old_p; same_p ]);
  Alcotest.(check bool) "regressed report fails" true
    (run [ old_p; bad_p ] <> 0);
  Alcotest.(check bool) "size-regressed report fails" true
    (run [ old_p; fat_p ] <> 0);
  Alcotest.(check int) "unreadable report is a usage error" 2
    (run [ old_p; Filename.concat dir "nope.json" ])

let test_daemon_refuses_second_instance () =
  let dir = tmp_sources () in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let socket = Filename.concat dir "d.sock" in
  let engine = Server.Engine.create ~store:(Store.in_memory ()) () in
  let server = Domain.spawn (fun () -> Server.Daemon.serve ~engine ~socket ()) in
  let rec wait_bound tries =
    if Sys.file_exists socket then ()
    else if tries = 0 then Alcotest.fail "daemon never bound"
    else begin
      Unix.sleepf 0.05;
      wait_bound (tries - 1)
    end
  in
  wait_bound 100;
  (match Server.Daemon.serve ~engine ~socket () with
  | Ok () -> Alcotest.fail "second daemon on the same socket succeeded"
  | Error m ->
      Alcotest.(check bool) "error names the socket" true
        (Astring.String.is_infix ~affix:"listening" m));
  (match Server.Client.with_connection ~socket (fun fd -> Server.Client.shutdown fd) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "shutdown connect failed: %s" m);
  match Domain.join server with
  | Ok () -> ()
  | Error m -> Alcotest.failf "daemon exited with: %s" m

(* --- the concurrent service under adversarial shapes --- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* spawn a hermetic daemon with the given pool shape, hand the test its
   socket, and always reap it — even when the test body fails, and even
   when the test shut the daemon down itself *)
let with_test_daemon ?workers ?queue_limit
    ?(store = fun (_ : string) -> Store.in_memory ()) f =
  let dir = tmp_sources () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ())
  @@ fun () ->
  let socket = Filename.concat dir "d.sock" in
  let engine =
    Server.Engine.create ~store:(store dir) ~metrics:(Obs.Metrics.create ()) ()
  in
  let server =
    Domain.spawn (fun () ->
        Server.Daemon.serve ~engine ~socket ?workers ?queue_limit ())
  in
  let rec connect tries =
    match Server.Client.connect ~socket () with
    | Ok fd -> fd
    | Error m ->
        if tries = 0 then Alcotest.failf "could not connect: %s" m
        else begin
          Unix.sleepf 0.05;
          connect (tries - 1)
        end
  in
  (* the daemon binds asynchronously: wait until it answers *)
  Server.Client.close (connect 100);
  Fun.protect
    ~finally:(fun () ->
      (* a test may have stopped the daemon itself: connecting can then
         fail or reset mid-roundtrip — either way, just reap the domain *)
      (try
         ignore
           (Server.Client.with_connection ~socket (fun fd ->
                Server.Client.shutdown fd))
       with Unix.Unix_error _ -> ());
      match Domain.join server with
      | Ok () -> ()
      | Error m -> Alcotest.failf "daemon exited with: %s" m)
  @@ fun () -> f ~socket ~connect:(fun () -> connect 3)

(* pipeline requests on one connection and collect one reply each, in
   order — the daemon promises in-order replies per connection *)
let pipeline_roundtrip fd reqs =
  List.iter (fun env -> P.send fd (P.request_to_json env)) reqs;
  List.map
    (fun _ ->
      match P.recv fd with
      | P.Frame j -> j
      | P.Eof -> Alcotest.fail "connection closed mid-pipeline"
      | P.Bad m -> Alcotest.failf "bad frame mid-pipeline: %s" m)
    reqs

let test_daemon_backpressure () =
  with_test_daemon ~workers:1 ~queue_limit:1 @@ fun ~socket:_ ~connect ->
  let fd = connect () in
  Fun.protect ~finally:(fun () -> Server.Client.close fd) @@ fun () ->
  (* one slow ping occupies the single worker, one fits the queue, and
     anything past that MUST be shed with a structured reply — the
     acceptance criterion is "overloaded, never a hang" *)
  let replies =
    pipeline_roundtrip fd
      (List.init 4 (fun _ -> P.request (P.Ping { delay_ms = 300 })))
  in
  let pongs = ref 0 and shed = ref 0 in
  List.iteri
    (fun i j ->
      match P.response_result j with
      | Ok _ -> incr pongs
      | Error e ->
          Alcotest.(check string)
            (Printf.sprintf "reply %d error code" i)
            "overloaded" e.P.code;
          (match e.P.retry_after_ms with
          | Some ms ->
              Alcotest.(check bool) "retry hint positive" true (ms > 0)
          | None -> Alcotest.fail "overloaded reply lost its retry hint");
          incr shed)
    replies;
  Alcotest.(check int) "every request answered" 4 (!pongs + !shed);
  Alcotest.(check bool) "accepted requests completed" true (!pongs >= 1);
  Alcotest.(check bool) "load beyond the queue was shed" true (!shed >= 1);
  match P.response_result (List.hd replies) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "the first request must be accepted"

let test_daemon_drains_on_shutdown () =
  with_test_daemon ~workers:1 @@ fun ~socket:_ ~connect ->
  let fd = connect () in
  let replies =
    Fun.protect ~finally:(fun () -> Server.Client.close fd) @@ fun () ->
    (* shutdown arrives while the ping is still in flight: the daemon
       must finish the work, flush both replies in order, then stop *)
    pipeline_roundtrip fd
      [ P.request (P.Ping { delay_ms = 300 }); P.request P.Shutdown ]
  in
  match List.map P.response_result replies with
  | [ Ok ping_fields; Ok stop_fields ] ->
      Alcotest.(check bool) "in-flight ping finished before teardown" true
        (match Server.Client.field "pong" ping_fields with
        | Some (Json.Bool b) -> b
        | _ -> false);
      Alcotest.(check bool) "shutdown acknowledged" true
        (match Server.Client.field "stopping" stop_fields with
        | Some (Json.Bool b) -> b
        | _ -> false)
  | _ -> Alcotest.fail "expected two ok replies, in request order"

let test_daemon_warm_link_zero_disk_ops () =
  let sources =
    [ { P.src_name = "util.mc"; src_text = util_src };
      { P.src_name = "main.mc"; src_text = main_src } ]
  in
  let disk_ops fields =
    match Server.Client.field "store" fields with
    | Some (Json.Obj store) -> (
        match Server.Client.field "disk_ops" store with
        | Some (Json.Int n) -> n
        | _ -> Alcotest.fail "store counters lost disk_ops")
    | _ -> Alcotest.fail "reply lost its store counters"
  in
  with_test_daemon
    ~store:(fun dir ->
      Store.create ~dir:(Some (Filename.concat dir "store")) ())
  @@ fun ~socket:_ ~connect ->
  let fd = connect () in
  Fun.protect ~finally:(fun () -> Server.Client.close fd) @@ fun () ->
  let link () =
    match Server.Client.link fd ~sources ~level:"full" [] with
    | Ok r -> r
    | Error e -> Alcotest.failf "daemon link failed: %s" e.P.message
  in
  let cold_bytes, cold_fields = link () in
  Alcotest.(check bool) "cold link writes artifacts to disk" true
    (disk_ops cold_fields > 0);
  let warm_bytes, warm_fields = link () in
  Alcotest.(check string) "warm duplicate bit-identical" cold_bytes warm_bytes;
  Alcotest.(check bool) "warm duplicate is an image hit" true
    (match
       Option.bind (Server.Client.field "image_hit" warm_fields) Json.get_bool
     with
    | Some b -> b
    | None -> false);
  (* the satellite criterion: a warm request→image round trip is served
     entirely from memory, proven by the per-request disk-ops delta *)
  Alcotest.(check int) "warm duplicate causes zero disk ops" 0
    (disk_ops warm_fields)

let test_daemon_concurrent_clients () =
  with_test_daemon ~workers:2 @@ fun ~socket ~connect ->
  let run profile =
    let spec =
      { Load.default_spec with
        Load.profile;
        clients = 4;
        requests = 16;
        retries = 4 }
    in
    match Load.run_against ~socket spec with
    | Ok r -> r
    | Error m -> Alcotest.failf "load run failed: %s" m
  in
  (* every concurrent reply is digest-checked against a serial
     in-process oracle by the harness itself *)
  let dup = run Load.Dup in
  Alcotest.(check int) "dup: every request succeeded" 16 dup.Load.r_ok;
  Alcotest.(check int) "dup: bit-identical to in-process links" 0
    dup.Load.r_mismatched;
  Alcotest.(check bool) "dup: concurrent duplicates coalesced" true
    (dup.Load.r_coalesced > 0);
  let mixed = run Load.Mixed in
  Alcotest.(check int) "mixed: every request succeeded" 16 mixed.Load.r_ok;
  Alcotest.(check int) "mixed: bit-identical to in-process links" 0
    mixed.Load.r_mismatched;
  (* the daemon's own counters saw the coalescing *)
  let fd = connect () in
  Fun.protect ~finally:(fun () -> Server.Client.close fd) @@ fun () ->
  match Server.Client.stats fd with
  | Error e -> Alcotest.failf "stats failed: %s" e.P.message
  | Ok fields -> (
      match Server.Client.field "sched" fields with
      | Some (Json.Obj sched) ->
          (match Server.Client.field "coalesced" sched with
          | Some (Json.Int n) ->
              Alcotest.(check bool) "sched counted coalesces" true (n > 0)
          | _ -> Alcotest.fail "sched stats lost coalesced")
      | _ -> Alcotest.fail "stats reply lost sched")

let test_client_retries_ride_out_overload () =
  with_test_daemon ~workers:1 ~queue_limit:1 @@ fun ~socket ~connect ->
  let fd = connect () in
  Fun.protect ~finally:(fun () -> Server.Client.close fd) @@ fun () ->
  (* two slow pings saturate the pool: one running, one queued. They
     are sent in two steps — a back-to-back pair can race the worker's
     pickup of the first and get shed off the size-1 queue instead of
     occupying it. Stats answers inline, so polling it never competes
     for the queue. *)
  let sched_int name fields =
    match Server.Client.field "sched" fields with
    | Some (Json.Obj sched) -> (
        match Server.Client.field name sched with
        | Some (Json.Int n) -> n
        | _ -> Alcotest.failf "sched stats lost %s" name)
    | _ -> Alcotest.fail "stats reply lost sched"
  in
  let rec wait_for what pred tries =
    if tries = 0 then Alcotest.failf "pool never reached %s" what
    else
      let reached =
        match
          Server.Client.with_connection ~socket (fun fd2 ->
              Server.Client.stats fd2)
        with
        | Ok (Ok fields) -> pred fields
        | _ -> false
      in
      if not reached then begin
        Unix.sleepf 0.01;
        wait_for what pred (tries - 1)
      end
  in
  P.send fd (P.request_to_json (P.request (P.Ping { delay_ms = 1500 })));
  wait_for "a busy worker" (fun f -> sched_int "busy" f >= 1) 100;
  P.send fd (P.request_to_json (P.request (P.Ping { delay_ms = 1500 })));
  wait_for "a full queue" (fun f -> sched_int "queue_depth" f >= 1) 100;
  (* without retries the saturated daemon sheds immediately ... *)
  (match
     Server.Client.with_connection ~socket (fun fd2 ->
         Server.Client.ping fd2 ())
   with
  | Ok (Error e) ->
      Alcotest.(check string) "shed without retries" "overloaded" e.P.code
  | Ok (Ok _) -> Alcotest.fail "expected the saturated pool to shed"
  | Error m -> Alcotest.failf "probe connect failed: %s" m);
  (* ... and with retries the client rides the overload out *)
  (match
     Server.Client.with_retries ~retries:10 ~base_ms:50 ~seed:7 ~socket
       (fun fd2 -> Server.Client.ping fd2 ())
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "retries exhausted: %s" e.P.message);
  (* drain the slow pings so the shutdown in the harness is clean *)
  List.iter
    (fun _ ->
      match P.recv fd with
      | P.Frame _ -> ()
      | P.Eof | P.Bad _ -> Alcotest.fail "slow ping reply lost")
    [ (); () ]

let suite =
  ( "server",
    [ Alcotest.test_case "requests round-trip the wire format" `Quick
        test_request_roundtrips;
      Alcotest.test_case "malformed requests rejected" `Quick
        test_request_rejects_garbage;
      Alcotest.test_case "hex codec round-trips" `Quick test_hex_roundtrip;
      Alcotest.test_case "framing over a socketpair" `Quick
        test_framing_over_socketpair;
      Alcotest.test_case "clean EOF at message boundary" `Quick
        test_eof_at_boundary;
      Alcotest.test_case "oversized frames rejected" `Quick
        test_oversized_frame_rejected;
      Alcotest.test_case "incremental relink lifts only the edit" `Quick
        test_engine_incremental_relink;
      Alcotest.test_case "engine images match direct links" `Quick
        test_engine_matches_direct_link;
      Alcotest.test_case "relink timings measurable" `Quick test_relink_timings;
      Alcotest.test_case "daemon end-to-end smoke" `Quick test_daemon_smoke;
      Alcotest.test_case "daemon metrics exact over the wire" `Quick
        test_daemon_metrics_exact;
      Alcotest.test_case "bench compare gates regressions" `Quick
        test_bench_compare_exit_codes;
      Alcotest.test_case "daemon refuses a second instance" `Quick
        test_daemon_refuses_second_instance;
      Alcotest.test_case "bounded queue sheds with overloaded" `Quick
        test_daemon_backpressure;
      Alcotest.test_case "shutdown drains in-flight work" `Quick
        test_daemon_drains_on_shutdown;
      Alcotest.test_case "warm duplicate link causes zero disk ops" `Quick
        test_daemon_warm_link_zero_disk_ops;
      Alcotest.test_case "concurrent clients: bit-identical and coalesced"
        `Quick test_daemon_concurrent_clients;
      Alcotest.test_case "client retries ride out overload" `Quick
        test_client_retries_ride_out_overload ] )
