(* The content-addressed artifact store: put/get across both layers,
   LRU eviction, on-disk atomicity and corruption recovery, codecs. *)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "omlt_store_%d_%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) @@ fun () ->
  f dir

(* --- memory layer --- *)

let test_put_get_memory () =
  let s = Store.in_memory () in
  let key = Store.digest_string "payload" in
  Alcotest.(check (option string)) "miss before put" None
    (Store.get s Store.Cunit ~key);
  Store.put s Store.Cunit ~key "payload";
  Alcotest.(check (option string)) "hit after put" (Some "payload")
    (Store.get s Store.Cunit ~key);
  let c = Store.counters s Store.Cunit in
  Alcotest.(check int) "one mem hit" 1 c.Store.mem_hits;
  Alcotest.(check int) "one full miss" 1 c.Store.disk_misses;
  Alcotest.(check int) "one put" 1 c.Store.puts

let test_kinds_are_separate_namespaces () =
  let s = Store.in_memory () in
  let key = Store.digest_string "k" in
  Store.put s Store.Cunit ~key "a";
  Store.put s Store.Image ~key "b";
  Alcotest.(check (option string)) "cunit value" (Some "a")
    (Store.get s Store.Cunit ~key);
  Alcotest.(check (option string)) "image value" (Some "b")
    (Store.get s Store.Image ~key);
  Alcotest.(check (option string)) "lifted unaffected" None
    (Store.get s Store.Lifted ~key)

let test_lru_eviction () =
  (* capacity for two 8-byte payloads; inserting a third evicts the
     least recently used *)
  let s = Store.create ~dir:None ~mem_capacity:16 () in
  let k i = Store.digest_string (string_of_int i) in
  Store.put s Store.Cunit ~key:(k 1) "11111111";
  Store.put s Store.Cunit ~key:(k 2) "22222222";
  (* touch 1 so 2 becomes the LRU victim *)
  ignore (Store.get s Store.Cunit ~key:(k 1));
  Store.put s Store.Cunit ~key:(k 3) "33333333";
  Alcotest.(check (option string)) "recently used survives" (Some "11111111")
    (Store.get s Store.Cunit ~key:(k 1));
  Alcotest.(check (option string)) "LRU victim evicted" None
    (Store.get s Store.Cunit ~key:(k 2));
  Alcotest.(check (option string)) "new entry present" (Some "33333333")
    (Store.get s Store.Cunit ~key:(k 3));
  let c = Store.counters s Store.Cunit in
  Alcotest.(check bool) "eviction counted" true (c.Store.evictions >= 1);
  Alcotest.(check bool) "memory stays within capacity" true
    (Store.mem_bytes s <= 16)

(* --- disk layer --- *)

let test_disk_persistence () =
  with_tmpdir @@ fun dir ->
  let key = Store.digest_string "persisted" in
  let s1 = Store.create ~dir:(Some dir) () in
  Store.put s1 Store.Lifted ~key "persisted";
  (* a fresh store over the same directory: memory is cold, disk hits *)
  let s2 = Store.create ~dir:(Some dir) () in
  Alcotest.(check (option string)) "disk hit in a fresh store"
    (Some "persisted")
    (Store.get s2 Store.Lifted ~key);
  let c = Store.counters s2 Store.Lifted in
  Alcotest.(check int) "counted as disk hit" 1 c.Store.disk_hits;
  (* the disk hit was promoted: the next get is a memory hit *)
  ignore (Store.get s2 Store.Lifted ~key);
  let c = Store.counters s2 Store.Lifted in
  Alcotest.(check int) "promoted to memory" 1 c.Store.mem_hits

let find_disk_file dir =
  let rec walk path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc e -> match acc with
          | Some _ -> acc
          | None -> walk (Filename.concat path e))
        None (Sys.readdir path)
    else Some path
  in
  match walk dir with
  | Some f -> f
  | None -> Alcotest.fail "no file written to the store directory"

let test_corruption_recovery () =
  with_tmpdir @@ fun dir ->
  let key = Store.digest_string "fragile" in
  let s1 = Store.create ~dir:(Some dir) () in
  Store.put s1 Store.Image ~key "fragile";
  (* flip bytes in the stored payload behind the store's back *)
  let file = find_disk_file dir in
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 file in
  seek_out oc (out_channel_length oc - 3);
  output_string oc "XXX";
  close_out oc;
  let s2 = Store.create ~dir:(Some dir) () in
  Alcotest.(check (option string)) "corrupted entry degrades to a miss" None
    (Store.get s2 Store.Image ~key);
  let c = Store.counters s2 Store.Image in
  Alcotest.(check int) "corruption counted" 1 c.Store.corruptions;
  Alcotest.(check bool) "corrupt file evicted from disk" false
    (Sys.file_exists file);
  (* recompute-and-put heals it *)
  Store.put s2 Store.Image ~key "fragile";
  let s3 = Store.create ~dir:(Some dir) () in
  Alcotest.(check (option string)) "healed" (Some "fragile")
    (Store.get s3 Store.Image ~key)

let test_counters_diff () =
  let a =
    { Store.mem_hits = 5; mem_misses = 4; disk_hits = 3; disk_misses = 2;
      evictions = 1; corruptions = 1; puts = 7 }
  in
  let b =
    { Store.mem_hits = 2; mem_misses = 1; disk_hits = 1; disk_misses = 1;
      evictions = 0; corruptions = 0; puts = 3 }
  in
  let d = Store.counters_diff a b in
  Alcotest.(check int) "mem_hits delta" 3 d.Store.mem_hits;
  Alcotest.(check int) "puts delta" 4 d.Store.puts;
  let sum = Store.counters_add d b in
  Alcotest.(check bool) "diff then add round-trips" true (sum = a)

(* --- codecs --- *)

let test_cunit_codec_roundtrip () =
  let u = Testutil.compile "func main() { io_putint_nl(7); return 0; }" in
  let bytes = Store.Codec.cunit_to_string u in
  match Store.Codec.cunit_of_string bytes with
  | Error m -> Alcotest.failf "decode failed: %s" m
  | Ok u' ->
      Alcotest.(check string) "codec round-trips the serialized form"
        (Store.Codec.cunit_to_string u')
        bytes;
      Alcotest.(check string) "digest is stable" (Store.Codec.cunit_digest u)
        (Store.Codec.cunit_digest u')

let test_cunit_digest_tracks_content () =
  let u1 = Testutil.compile "func main() { return 1; }" in
  let u2 = Testutil.compile "func main() { return 2; }" in
  Alcotest.(check bool) "different programs, different digests" false
    (String.equal (Store.Codec.cunit_digest u1) (Store.Codec.cunit_digest u2))

let test_image_codec_roundtrip () =
  let image =
    Testutil.link_std [ Testutil.compile "func main() { return 0; }" ]
  in
  let bytes = Store.Codec.image_to_string image in
  match Store.Codec.image_of_string bytes with
  | Error m -> Alcotest.failf "decode failed: %s" m
  | Ok image' ->
      Alcotest.(check string) "image bytes round-trip"
        (Store.Codec.image_to_string image')
        bytes;
      let out = (Testutil.run_image image').Machine.Cpu.output in
      Alcotest.(check string) "decoded image still runs"
        (Testutil.run_image image).Machine.Cpu.output out

let test_lifted_codec_rejects_garbage () =
  match Store.Codec.lifted_of_string "not a marshalled module" with
  | Ok _ -> Alcotest.fail "garbage decoded as a lifted module"
  | Error _ -> ()

let suite =
  ( "store",
    [ Alcotest.test_case "put/get in memory" `Quick test_put_get_memory;
      Alcotest.test_case "kinds are separate namespaces" `Quick
        test_kinds_are_separate_namespaces;
      Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
      Alcotest.test_case "disk persistence across stores" `Quick
        test_disk_persistence;
      Alcotest.test_case "corruption degrades to a miss" `Quick
        test_corruption_recovery;
      Alcotest.test_case "counters diff/add" `Quick test_counters_diff;
      Alcotest.test_case "cunit codec round-trip" `Quick
        test_cunit_codec_roundtrip;
      Alcotest.test_case "cunit digest tracks content" `Quick
        test_cunit_digest_tracks_content;
      Alcotest.test_case "image codec round-trip" `Quick
        test_image_codec_roundtrip;
      Alcotest.test_case "lifted codec rejects garbage" `Quick
        test_lifted_codec_rejects_garbage ] )
